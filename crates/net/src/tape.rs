//! Engine tapes: serializable recordings of a run's complete
//! [`EngineInput`] sequence, replayable through the sans-io
//! [`SleepyEngine`] without any protocol code.
//!
//! A tape is the conformance artifact of the sans-io refactor. Because
//! the state machine's inputs carry only ports, bit sizes, and
//! [`Action`](crate::Action)s — never payloads — the full input stream
//! of any run fits in a small, versioned JSONL file, and replaying it
//! deterministically regenerates the *entire* output stream: every
//! round boundary, every trace event, every delivery, in the engine's
//! canonical byte order. [`replay_tape`] re-runs a tape and checks the
//! regenerated stream against the digest recorded at capture time, so a
//! committed tape corpus pins the engine's behavior byte-for-byte
//! across refactors (see `docs/tapes.md`).
//!
//! # Format (version 1)
//!
//! One JSON value per line:
//!
//! 1. a header line carrying the magic (`"tape":"sleepy-engine-tape"`),
//!    the format version, a label/seed stamped by the recording tool,
//!    the graph (`n` plus a canonical edge list — [`Graph::from_edges`]
//!    rebuilds the identical CSR from it), and the engine knobs that
//!    affect replay (`max_rounds`, `congest_bits`, the loss process,
//!    and whether message-level events were generated);
//! 2. one line per [`EngineInput`], in order;
//! 3. an end line with the output count, the FNV-1a-64 digest of the
//!    output stream (each output rendered as compact JSON plus a
//!    newline), and the run's error, if it failed.

use crate::engine::EngineConfig;
use crate::fault::FaultPlan;
use crate::metrics::RunMetrics;
use crate::protocol::Action;
use crate::statemachine::{EngineInput, OutMsg, SleepyEngine};
use crate::Round;
use serde::{Serialize, Value};
use sleepy_graph::{Graph, NodeId, Port};

/// The tape format version this build writes and reads.
pub const TAPE_VERSION: u64 = 1;

/// Magic string identifying a tape header line.
const TAPE_MAGIC: &str = "sleepy-engine-tape";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A running FNV-1a-64 digest.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Digests one engine output exactly as the tape format defines it:
/// compact JSON rendering plus a trailing newline.
fn digest_output(fnv: &mut Fnv, output: &crate::statemachine::EngineOutput) {
    fnv.update(serde::value::to_compact_string(&output.to_value()).as_bytes());
    fnv.update(b"\n");
}

/// Everything needed to replay a tape: the graph, the engine knobs that
/// affect the run, and provenance stamps.
#[derive(Debug, Clone, PartialEq)]
pub struct TapeHeader {
    /// Human-readable provenance (e.g. `"alg1/star/n=8"`), stamped by
    /// the recording tool; empty when recorded via
    /// [`run_protocol_taped`](crate::run_protocol_taped) directly.
    pub label: String,
    /// The protocol seed the recording tool used (provenance only — the
    /// tape replays without protocol code).
    pub seed: u64,
    /// Node count.
    pub n: usize,
    /// Canonical edge list (`u < v`, ascending); [`Graph::from_edges`]
    /// rebuilds the identical port numbering from it.
    pub edges: Vec<(NodeId, NodeId)>,
    /// [`EngineConfig::max_rounds`] at capture time.
    pub max_rounds: Round,
    /// [`EngineConfig::congest_bits`] at capture time.
    pub congest_bits: Option<usize>,
    /// [`EngineConfig::loss_probability`] at capture time (exact: the
    /// JSON rendering round-trips the f64 bit pattern).
    pub loss_probability: f64,
    /// [`EngineConfig::loss_seed`] at capture time.
    pub loss_seed: u64,
    /// [`EngineConfig::fault`] at capture time — the generalized fault
    /// plan. Serialized as an optional `fault` header key only when it
    /// is not [`FaultPlan::None`], so fault-free tapes keep their exact
    /// pre-fault byte layout.
    pub fault: FaultPlan,
    /// Whether message-level events were generated (the recording
    /// sink's [`wants_messages`](crate::TraceSink::wants_messages)) —
    /// part of the output stream's definition, so part of the tape.
    pub messages: bool,
}

impl TapeHeader {
    /// The engine configuration a replay must run under.
    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            max_rounds: self.max_rounds,
            trace: false,
            trace_messages: false,
            congest_bits: self.congest_bits,
            loss_probability: self.loss_probability,
            loss_seed: self.loss_seed,
            fault: self.fault.clone(),
        }
    }

    /// Rebuilds the graph the tape was recorded on.
    fn graph(&self) -> Result<Graph, TapeError> {
        Graph::from_edges(self.n, self.edges.iter().copied())
            .map_err(|e| TapeError::Graph(e.to_string()))
    }
}

/// One recorded engine run: header, input stream, and the recorded
/// output digest that replays are held to.
#[derive(Debug, Clone, PartialEq)]
pub struct Tape {
    /// Replay context and provenance.
    pub header: TapeHeader,
    /// The complete input sequence, in the order the driver fed it.
    pub inputs: Vec<EngineInput>,
    /// Number of [`EngineOutput`](crate::EngineOutput)s the recorded run
    /// emitted.
    pub output_count: u64,
    /// FNV-1a-64 over the recorded output stream (compact JSON, one
    /// trailing newline per output).
    pub outputs_fnv: u64,
    /// The error the recorded run failed with, if any (rendered via
    /// `Display`); `None` for completed runs.
    pub error: Option<String>,
}

impl Tape {
    /// Serializes the tape to its canonical JSONL text (one trailing
    /// newline, byte-stable: re-serializing a parsed tape reproduces the
    /// input bytes).
    pub fn to_jsonl(&self) -> String {
        let h = &self.header;
        let edges: Vec<Value> = h
            .edges
            .iter()
            .map(|&(u, v)| Value::Array(vec![Value::UInt(u64::from(u)), Value::UInt(u64::from(v))]))
            .collect();
        let mut entries = vec![
            ("tape".to_string(), Value::String(TAPE_MAGIC.to_string())),
            ("version".to_string(), Value::UInt(TAPE_VERSION)),
            ("label".to_string(), Value::String(h.label.clone())),
            ("seed".to_string(), Value::UInt(h.seed)),
            ("n".to_string(), Value::UInt(h.n as u64)),
            ("edges".to_string(), Value::Array(edges)),
            ("max_rounds".to_string(), Value::UInt(h.max_rounds)),
            (
                "congest_bits".to_string(),
                h.congest_bits.map_or(Value::Null, |c| Value::UInt(c as u64)),
            ),
            ("loss_probability".to_string(), Value::Float(h.loss_probability)),
            ("loss_seed".to_string(), Value::UInt(h.loss_seed)),
        ];
        if !h.fault.is_none() {
            entries.push(("fault".to_string(), h.fault.to_value()));
        }
        entries.push(("messages".to_string(), Value::Bool(h.messages)));
        let header = Value::Object(entries);
        let mut out = String::new();
        out.push_str(&serde::value::to_compact_string(&header));
        out.push('\n');
        for input in &self.inputs {
            out.push_str(&serde::value::to_compact_string(&input.to_value()));
            out.push('\n');
        }
        let end = Value::Object(vec![
            ("end".to_string(), Value::Bool(true)),
            ("outputs".to_string(), Value::UInt(self.output_count)),
            ("fnv".to_string(), Value::String(format!("{:016x}", self.outputs_fnv))),
            (
                "error".to_string(),
                self.error.as_ref().map_or(Value::Null, |e| Value::String(e.clone())),
            ),
        ]);
        out.push_str(&serde::value::to_compact_string(&end));
        out.push('\n');
        out
    }

    /// Parses a tape from its JSONL text.
    ///
    /// # Errors
    ///
    /// [`TapeError::Parse`] (with a 1-based line number) on malformed
    /// lines, [`TapeError::Version`] on an unknown format version, and
    /// [`TapeError::Truncated`] when the end line is missing.
    pub fn from_jsonl(text: &str) -> Result<Tape, TapeError> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (line_no, header_line) = lines.next().ok_or(TapeError::Truncated)?;
        let header = parse_header(line_no + 1, header_line)?;
        let mut inputs = Vec::new();
        let mut end: Option<(u64, u64, Option<String>)> = None;
        for (idx, line) in lines {
            let line_no = idx + 1;
            if end.is_some() {
                return Err(TapeError::Parse {
                    line: line_no,
                    reason: "content after the end line".to_string(),
                });
            }
            let v = serde_json::from_str(line)
                .map_err(|e| TapeError::Parse { line: line_no, reason: e.to_string() })?;
            if v.get("end").is_some() {
                end = Some(parse_end(line_no, &v)?);
            } else {
                inputs.push(parse_input(line_no, &v)?);
            }
        }
        let (output_count, outputs_fnv, error) = end.ok_or(TapeError::Truncated)?;
        Ok(Tape { header, inputs, output_count, outputs_fnv, error })
    }
}

fn field<'v>(line: usize, v: &'v Value, key: &str) -> Result<&'v Value, TapeError> {
    v.get(key).ok_or_else(|| TapeError::Parse { line, reason: format!("missing field `{key}`") })
}

fn field_u64(line: usize, v: &Value, key: &str) -> Result<u64, TapeError> {
    field(line, v, key)?.as_u64().ok_or_else(|| TapeError::Parse {
        line,
        reason: format!("field `{key}` is not an unsigned integer"),
    })
}

fn field_str<'v>(line: usize, v: &'v Value, key: &str) -> Result<&'v str, TapeError> {
    field(line, v, key)?
        .as_str()
        .ok_or_else(|| TapeError::Parse { line, reason: format!("field `{key}` is not a string") })
}

fn field_bool(line: usize, v: &Value, key: &str) -> Result<bool, TapeError> {
    match field(line, v, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(TapeError::Parse { line, reason: format!("field `{key}` is not a boolean") }),
    }
}

fn field_node(line: usize, v: &Value, key: &str) -> Result<NodeId, TapeError> {
    NodeId::try_from(field_u64(line, v, key)?).map_err(|_| TapeError::Parse {
        line,
        reason: format!("field `{key}` exceeds the node id range"),
    })
}

fn parse_header(line: usize, text: &str) -> Result<TapeHeader, TapeError> {
    let v =
        serde_json::from_str(text).map_err(|e| TapeError::Parse { line, reason: e.to_string() })?;
    if field_str(line, &v, "tape")? != TAPE_MAGIC {
        return Err(TapeError::Parse { line, reason: "not a sleepy-engine-tape".to_string() });
    }
    let version = field_u64(line, &v, "version")?;
    if version != TAPE_VERSION {
        return Err(TapeError::Version { found: version });
    }
    let edges_v = field(line, &v, "edges")?.as_array().ok_or_else(|| TapeError::Parse {
        line,
        reason: "field `edges` is not an array".to_string(),
    })?;
    let mut edges = Vec::with_capacity(edges_v.len());
    for e in edges_v {
        let pair = e.as_array().filter(|p| p.len() == 2).ok_or_else(|| TapeError::Parse {
            line,
            reason: "edge is not a two-element array".to_string(),
        })?;
        let endpoint = |x: &Value| {
            x.as_u64().and_then(|u| NodeId::try_from(u).ok()).ok_or_else(|| TapeError::Parse {
                line,
                reason: "edge endpoint is not a node id".to_string(),
            })
        };
        edges.push((endpoint(&pair[0])?, endpoint(&pair[1])?));
    }
    let congest_bits = match field(line, &v, "congest_bits")? {
        Value::Null => None,
        c => Some(c.as_u64().ok_or_else(|| TapeError::Parse {
            line,
            reason: "field `congest_bits` is not an unsigned integer or null".to_string(),
        })? as usize),
    };
    let loss_probability = field(line, &v, "loss_probability")?.as_f64().ok_or_else(|| {
        TapeError::Parse { line, reason: "field `loss_probability` is not a number".to_string() }
    })?;
    // Optional for backward compatibility: pre-fault tapes have no
    // `fault` key and parse as `FaultPlan::None`.
    let fault = match v.get("fault") {
        None => FaultPlan::None,
        Some(f) => FaultPlan::from_value(f).map_err(|reason| TapeError::Parse { line, reason })?,
    };
    Ok(TapeHeader {
        label: field_str(line, &v, "label")?.to_string(),
        seed: field_u64(line, &v, "seed")?,
        n: field_u64(line, &v, "n")? as usize,
        edges,
        max_rounds: field_u64(line, &v, "max_rounds")?,
        congest_bits,
        loss_probability,
        loss_seed: field_u64(line, &v, "loss_seed")?,
        fault,
        messages: field_bool(line, &v, "messages")?,
    })
}

fn parse_input(line: usize, v: &Value) -> Result<EngineInput, TapeError> {
    match field_str(line, v, "i")? {
        "sends" => {
            let node = field_node(line, v, "node")?;
            let msgs_v = field(line, v, "msgs")?.as_array().ok_or_else(|| TapeError::Parse {
                line,
                reason: "field `msgs` is not an array".to_string(),
            })?;
            let mut msgs = Vec::with_capacity(msgs_v.len());
            for m in msgs_v {
                let pair =
                    m.as_array().filter(|p| p.len() == 2).ok_or_else(|| TapeError::Parse {
                        line,
                        reason: "message is not a [port, bits] pair".to_string(),
                    })?;
                let uint = |x: &Value| {
                    x.as_u64().ok_or_else(|| TapeError::Parse {
                        line,
                        reason: "message entry is not an unsigned integer".to_string(),
                    })
                };
                msgs.push(OutMsg { port: uint(&pair[0])? as Port, bits: uint(&pair[1])? as usize });
            }
            Ok(EngineInput::Sends { node, msgs })
        }
        "step" => {
            let node = field_node(line, v, "node")?;
            let action = match field(line, v, "act")? {
                Value::String(s) if s == "c" => Action::Continue,
                Value::String(s) if s == "t" => Action::Terminate,
                obj => {
                    Action::SleepUntil(field_u64(line, obj, "s").map_err(|_| TapeError::Parse {
                        line,
                        reason: "field `act` is not \"c\", \"t\", or {\"s\": round}".to_string(),
                    })?)
                }
            };
            Ok(EngineInput::Step { node, action, output_some: field_bool(line, v, "out")? })
        }
        other => Err(TapeError::Parse { line, reason: format!("unknown input kind `{other}`") }),
    }
}

fn parse_end(line: usize, v: &Value) -> Result<(u64, u64, Option<String>), TapeError> {
    let outputs = field_u64(line, v, "outputs")?;
    let fnv_hex = field_str(line, v, "fnv")?;
    let fnv = u64::from_str_radix(fnv_hex, 16).map_err(|_| TapeError::Parse {
        line,
        reason: "field `fnv` is not a hex digest".to_string(),
    })?;
    let error = match field(line, v, "error")? {
        Value::Null => None,
        Value::String(s) => Some(s.clone()),
        _ => {
            return Err(TapeError::Parse {
                line,
                reason: "field `error` is not a string or null".to_string(),
            })
        }
    };
    Ok((outputs, fnv, error))
}

/// Records a run's inputs and output digest as the driver executes it.
/// Constructed by [`run_protocol_taped`](crate::run_protocol_taped).
#[derive(Debug)]
pub(crate) struct TapeRecorder {
    header: TapeHeader,
    inputs: Vec<EngineInput>,
    count: u64,
    fnv: Fnv,
}

impl TapeRecorder {
    pub(crate) fn new(graph: &Graph, config: &EngineConfig, messages: bool) -> Self {
        TapeRecorder {
            header: TapeHeader {
                label: String::new(),
                seed: 0,
                n: graph.n(),
                edges: graph.edges().collect(),
                max_rounds: config.max_rounds,
                congest_bits: config.congest_bits,
                loss_probability: config.loss_probability,
                loss_seed: config.loss_seed,
                fault: config.fault.clone(),
                messages,
            },
            inputs: Vec::new(),
            count: 0,
            fnv: Fnv::new(),
        }
    }

    pub(crate) fn record_input(&mut self, input: &EngineInput) {
        self.inputs.push(input.clone());
    }

    pub(crate) fn record_output(&mut self, output: &crate::statemachine::EngineOutput) {
        self.count += 1;
        digest_output(&mut self.fnv, output);
    }

    pub(crate) fn finish(self, error: Option<String>) -> Tape {
        Tape {
            header: self.header,
            inputs: self.inputs,
            output_count: self.count,
            outputs_fnv: self.fnv.0,
            error,
        }
    }
}

/// What a successful replay reproduced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Number of outputs the replay emitted (equals the recorded count).
    pub output_count: u64,
    /// The replayed output stream's digest (equals the recorded digest).
    pub outputs_fnv: u64,
    /// The replayed run's error, if the recorded run failed (equals the
    /// recorded error).
    pub error: Option<String>,
    /// The replayed run's metrics, for completed runs (`None` when the
    /// tape records a failed run).
    pub metrics: Option<RunMetrics>,
}

/// Replays `tape` through a fresh [`SleepyEngine`] and checks the
/// regenerated output stream against the digest recorded at capture
/// time.
///
/// # Errors
///
/// [`TapeError::Graph`] if the header's graph is invalid, and
/// [`TapeError::Divergence`] whenever the replay does not reproduce the
/// recording exactly: an input the state machine rejects that the
/// recording did not, a premature end of input, or any mismatch in
/// output count, output digest, or recorded error.
pub fn replay_tape(tape: &Tape) -> Result<ReplayOutcome, TapeError> {
    let graph = tape.header.graph()?;
    let config = tape.header.engine_config();
    let mut sm = SleepyEngine::new(&graph, &config, tape.header.messages);
    let mut count: u64 = 0;
    let mut fnv = Fnv::new();
    let mut error: Option<String> = None;
    while let Some(o) = sm.poll_output() {
        count += 1;
        digest_output(&mut fnv, &o);
    }
    for (i, input) in tape.inputs.iter().enumerate() {
        if error.is_some() {
            return Err(TapeError::Divergence {
                reason: format!(
                    "input {i} follows an engine error; the recording fed {} inputs",
                    tape.inputs.len()
                ),
            });
        }
        if let Err(e) = sm.handle_input(input.clone()) {
            error = Some(e.to_string());
        }
        while let Some(o) = sm.poll_output() {
            count += 1;
            digest_output(&mut fnv, &o);
        }
    }
    if error.is_none() && !sm.is_finished() {
        return Err(TapeError::Divergence {
            reason: "tape input ended before the run finished".to_string(),
        });
    }
    if count != tape.output_count {
        return Err(TapeError::Divergence {
            reason: format!("replay emitted {count} outputs, tape recorded {}", tape.output_count),
        });
    }
    if fnv.0 != tape.outputs_fnv {
        return Err(TapeError::Divergence {
            reason: format!(
                "replay output digest {:016x} != recorded {:016x}",
                fnv.0, tape.outputs_fnv
            ),
        });
    }
    if error != tape.error {
        return Err(TapeError::Divergence {
            reason: format!("replay error {error:?} != recorded {:?}", tape.error),
        });
    }
    let metrics = if error.is_none() { Some(sm.finish()) } else { None };
    Ok(ReplayOutcome { output_count: count, outputs_fnv: fnv.0, error, metrics })
}

/// Tape parsing and replay failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TapeError {
    /// A line failed to parse (1-based line number).
    Parse {
        /// Line number in the JSONL text.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The tape was written by an unknown format version.
    Version {
        /// The version the header claims.
        found: u64,
    },
    /// The text ends before the end line (or is empty).
    Truncated,
    /// The header's graph description is invalid.
    Graph(String),
    /// The replay did not reproduce the recording.
    Divergence {
        /// What diverged.
        reason: String,
    },
}

impl std::fmt::Display for TapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapeError::Parse { line, reason } => {
                write!(f, "tape parse error at line {line}: {reason}")
            }
            TapeError::Version { found } => {
                write!(f, "unsupported tape version {found} (this build reads {TAPE_VERSION})")
            }
            TapeError::Truncated => write!(f, "tape is truncated: no end line"),
            TapeError::Graph(e) => write!(f, "tape graph is invalid: {e}"),
            TapeError::Divergence { reason } => write!(f, "tape replay divergence: {reason}"),
        }
    }
}

impl std::error::Error for TapeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_protocol_taped, RunOutcome};
    use crate::message::{Incoming, Outbox};
    use crate::protocol::{NodeCtx, Protocol};
    use crate::sink::{NullSink, TraceBuffer};
    use crate::EngineError;

    /// Node 0 broadcasts its round; everyone terminates at round 3, except
    /// node 1 which sleeps rounds 1..=2.
    struct Mixer {
        id: NodeId,
        heard: u64,
    }
    impl Protocol for Mixer {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if self.id == 0 {
                out.broadcast(ctx.round);
            }
        }
        fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Action {
            self.heard += inbox.len() as u64;
            match (self.id, ctx.round) {
                (1, 0) => Action::SleepUntil(3),
                (_, r) if r >= 3 => Action::Terminate,
                _ => Action::Continue,
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.heard)
        }
    }

    fn record() -> (Result<RunOutcome<u64>, EngineError>, Tape) {
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).unwrap();
        let cfg = EngineConfig { loss_probability: 0.1, loss_seed: 5, ..EngineConfig::default() };
        let mut buffer = TraceBuffer::new(true);
        run_protocol_taped(&g, &cfg, |id, _| Mixer { id, heard: 0 }, &mut buffer)
    }

    #[test]
    fn record_replay_round_trip() {
        let (run, tape) = record();
        let run = run.unwrap();
        assert!(tape.error.is_none());
        assert!(!tape.inputs.is_empty());
        let replay = replay_tape(&tape).unwrap();
        assert_eq!(replay.output_count, tape.output_count);
        assert_eq!(replay.outputs_fnv, tape.outputs_fnv);
        assert_eq!(replay.metrics.as_ref(), Some(&run.metrics));
    }

    #[test]
    fn jsonl_round_trip_is_byte_stable() {
        let (_, mut tape) = record();
        tape.header.label = "mixer/triangle/n=3".to_string();
        tape.header.seed = 17;
        let text = tape.to_jsonl();
        let parsed = Tape::from_jsonl(&text).unwrap();
        assert_eq!(parsed, tape);
        assert_eq!(parsed.to_jsonl(), text);
        replay_tape(&parsed).unwrap();
    }

    #[test]
    fn tampered_tape_diverges() {
        let (_, mut tape) = record();
        // Flip one recorded Step's action to sleeping: the replayed output
        // stream must no longer match the recorded digest (or the input
        // becomes outright invalid), never silently pass.
        let step = tape
            .inputs
            .iter()
            .position(|i| matches!(i, EngineInput::Step { .. }))
            .expect("every run has steps");
        if let EngineInput::Step { action, .. } = &mut tape.inputs[step] {
            *action = Action::SleepUntil(100);
        }
        let err = replay_tape(&tape).unwrap_err();
        assert!(matches!(err, TapeError::Divergence { .. }), "got {err}");
    }

    #[test]
    fn failed_runs_are_faithfully_replayed() {
        /// Sends on a port it does not have at round 1.
        struct BadSecondRound(NodeId);
        impl Protocol for BadSecondRound {
            type Msg = ();
            type Output = ();
            fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<()>) {
                if ctx.round == 1 && self.0 == 0 {
                    out.send(99, ());
                }
            }
            fn receive(&mut self, _: &NodeCtx, _: &[Incoming<()>]) -> Action {
                Action::Continue
            }
            fn output(&self) -> Option<()> {
                None
            }
        }
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let (run, tape) = run_protocol_taped(
            &g,
            &EngineConfig::default(),
            |id, _| BadSecondRound(id),
            &mut NullSink,
        );
        let err = run.unwrap_err();
        assert!(matches!(err, EngineError::InvalidPort { .. }));
        assert_eq!(tape.error.as_deref(), Some(err.to_string().as_str()));
        let replay = replay_tape(&tape).unwrap();
        assert_eq!(replay.error, tape.error);
        assert!(replay.metrics.is_none());
        // And the error survives a serialization round trip.
        let parsed = Tape::from_jsonl(&tape.to_jsonl()).unwrap();
        assert_eq!(parsed, tape);
        replay_tape(&parsed).unwrap();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(Tape::from_jsonl(""), Err(TapeError::Truncated)));
        assert!(matches!(
            Tape::from_jsonl("{\"tape\":\"other\"}\n"),
            Err(TapeError::Parse { line: 1, .. })
        ));
        let versioned =
            "{\"tape\":\"sleepy-engine-tape\",\"version\":99,\"label\":\"\",\"seed\":0,\
             \"n\":0,\"edges\":[],\"max_rounds\":10,\"congest_bits\":null,\
             \"loss_probability\":0.0,\"loss_seed\":0,\"messages\":false}\n";
        assert!(matches!(Tape::from_jsonl(versioned), Err(TapeError::Version { found: 99 })));
        let (_, tape) = record();
        let text = tape.to_jsonl();
        let headerless = text.lines().next().unwrap().to_string();
        assert!(matches!(Tape::from_jsonl(&headerless), Err(TapeError::Truncated)));
    }

    /// Faulted runs are first-class tapes: the plan rides in the header,
    /// the recorded stream replays byte-for-byte, and fault-free tapes
    /// keep the exact pre-fault header layout (no `fault` key at all).
    #[test]
    fn fault_plans_ride_in_headers_and_replay() {
        use crate::fault::{CrashWindow, FaultPlan};
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).unwrap();
        let plans = [
            FaultPlan::Burst { p_enter: 0.3, p_exit: 0.5, loss_good: 0.0, loss_bad: 1.0, seed: 3 },
            FaultPlan::Crash { windows: vec![CrashWindow { node: 1, start: 0, end: 2 }] },
        ];
        for plan in plans {
            let cfg = EngineConfig { fault: plan.clone(), ..EngineConfig::default() };
            let mut buffer = TraceBuffer::new(true);
            let (run, tape) =
                run_protocol_taped(&g, &cfg, |id, _| Mixer { id, heard: 0 }, &mut buffer);
            run.unwrap();
            assert_eq!(tape.header.fault, plan);
            let text = tape.to_jsonl();
            assert!(text.contains("\"fault\":{\"kind\":"), "header carries the plan: {text}");
            let parsed = Tape::from_jsonl(&text).unwrap();
            assert_eq!(parsed, tape);
            assert_eq!(parsed.to_jsonl(), text, "canonical round trip");
            let replay = replay_tape(&parsed).unwrap();
            assert_eq!(replay.outputs_fnv, tape.outputs_fnv);
        }
        // Fault-free recordings emit no `fault` key, and headers without
        // one (every pre-fault tape) still parse.
        let (_, tape) = record();
        let text = tape.to_jsonl();
        assert!(!text.contains("\"fault\""), "legacy layout preserved: {text}");
        assert_eq!(Tape::from_jsonl(&text).unwrap().header.fault, FaultPlan::None);
        // A malformed plan is a parse error, not a panic.
        let bad = text.replacen(
            "\"loss_seed\":5",
            "\"loss_seed\":5,\"fault\":{\"kind\":\"iid\",\"probability\":7.0,\"seed\":0}",
            1,
        );
        assert!(matches!(Tape::from_jsonl(&bad), Err(TapeError::Parse { line: 1, .. })));
    }

    #[test]
    fn loss_probability_round_trips_exactly() {
        let (_, mut tape) = record();
        // One ulp above 0.1: a value whose decimal rendering must carry
        // enough digits to reparse to the same bit pattern.
        tape.header.loss_probability = f64::from_bits(0.1f64.to_bits() + 1);
        let parsed = Tape::from_jsonl(&tape.to_jsonl()).unwrap();
        assert_eq!(
            parsed.header.loss_probability.to_bits(),
            tape.header.loss_probability.to_bits()
        );
    }
}
