//! Energy accounting for sleeping-model runs.
//!
//! The paper's motivation (§1.1) is that a node's energy draw while *idle*
//! (listening) is close to its transmit/receive draw, while *sleeping* is
//! orders of magnitude cheaper — so minimizing awake rounds minimizes
//! energy. This module turns [`RunMetrics`] into energy figures under a
//! configurable per-state cost model.

use crate::metrics::{NodeMetrics, RunMetrics};
use serde::{Deserialize, Serialize};

/// Per-state energy costs.
///
/// Units are arbitrary "energy per round" (for state costs) and "energy per
/// message" (for tx/rx increments on top of the round cost). The defaults
/// follow the ratios reported by the measurement studies the paper cites
/// (Feeney–Nilsson INFOCOM'01 and successors): idle ≈ receive ≈ transmit,
/// and sleep smaller by roughly two orders of magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Cost per awake round (idle/listening baseline).
    pub idle_per_round: f64,
    /// Cost per sleeping round.
    pub sleep_per_round: f64,
    /// Additional cost per message transmitted.
    pub tx_per_message: f64,
    /// Additional cost per message received.
    pub rx_per_message: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            idle_per_round: 1.0,
            sleep_per_round: 0.02,
            tx_per_message: 0.4,
            rx_per_message: 0.2,
        }
    }
}

impl EnergyModel {
    /// An idealized model where only awake rounds cost energy — the paper's
    /// abstract measure (energy ∝ awake time).
    pub fn awake_rounds_only() -> Self {
        EnergyModel {
            idle_per_round: 1.0,
            sleep_per_round: 0.0,
            tx_per_message: 0.0,
            rx_per_message: 0.0,
        }
    }

    /// Energy consumed by one node over a run that lasted `total_rounds`
    /// wall-clock rounds. Rounds after the node's termination cost nothing
    /// (a terminated node has switched off).
    pub fn node_energy(&self, m: &NodeMetrics, total_rounds: u64) -> f64 {
        let lifetime = m.finish_round.map(|r| r + 1).unwrap_or(total_rounds);
        let asleep = lifetime.saturating_sub(m.awake_rounds);
        self.idle_per_round * m.awake_rounds as f64
            + self.sleep_per_round * asleep as f64
            + self.tx_per_message * m.messages_sent as f64
            + self.rx_per_message * m.messages_received as f64
    }

    /// Aggregates per-node energy over a full run.
    pub fn report(&self, metrics: &RunMetrics) -> EnergyReport {
        let per_node: Vec<f64> =
            metrics.per_node.iter().map(|m| self.node_energy(m, metrics.total_rounds)).collect();
        let total: f64 = per_node.iter().sum();
        let max = per_node.iter().copied().fold(0.0f64, f64::max);
        let n = per_node.len();
        EnergyReport { total, mean: if n == 0 { 0.0 } else { total / n as f64 }, max, per_node }
    }
}

/// Energy totals for a run, from [`EnergyModel::report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Sum of per-node energy.
    pub total: f64,
    /// Mean per-node energy (total / n).
    pub mean: f64,
    /// Maximum per-node energy.
    pub max: f64,
    /// Energy per node, indexed by node id.
    pub per_node: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::NodeMetrics;

    fn metrics_one(awake: u64, finish: Option<u64>, sent: u64, recv: u64) -> NodeMetrics {
        NodeMetrics {
            awake_rounds: awake,
            finish_round: finish,
            decide_round: finish,
            messages_sent: sent,
            messages_received: recv,
            messages_dropped: 0,
            messages_lost: 0,
            bits_sent: 0,
        }
    }

    #[test]
    fn node_energy_components() {
        let em = EnergyModel {
            idle_per_round: 1.0,
            sleep_per_round: 0.1,
            tx_per_message: 2.0,
            rx_per_message: 3.0,
        };
        // Awake 4 of 10 lifetime rounds, 2 sends, 1 receive:
        let m = metrics_one(4, Some(9), 2, 1);
        let e = em.node_energy(&m, 100);
        assert!((e - (4.0 + 0.6 + 4.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn unfinished_node_charged_full_run() {
        let em = EnergyModel::default();
        let m = metrics_one(1, None, 0, 0);
        let e = em.node_energy(&m, 50);
        let expected = 1.0 + 0.02 * 49.0;
        assert!((e - expected).abs() < 1e-12);
    }

    #[test]
    fn awake_only_model_counts_awake_rounds() {
        let em = EnergyModel::awake_rounds_only();
        let m = metrics_one(7, Some(99), 10, 10);
        assert!((em.node_energy(&m, 100) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates() {
        let em = EnergyModel::awake_rounds_only();
        let rm = RunMetrics {
            per_node: vec![metrics_one(2, Some(9), 0, 0), metrics_one(6, Some(9), 0, 0)],
            total_rounds: 10,
            active_rounds: 10,
        };
        let rep = em.report(&rm);
        assert!((rep.total - 8.0).abs() < 1e-12);
        assert!((rep.mean - 4.0).abs() < 1e-12);
        assert!((rep.max - 6.0).abs() < 1e-12);
        assert_eq!(rep.per_node.len(), 2);
    }

    #[test]
    fn default_ratios_are_sleep_dominated() {
        let em = EnergyModel::default();
        assert!(em.sleep_per_round < em.idle_per_round / 10.0);
    }

    #[test]
    fn never_terminated_node_pays_sleep_for_the_whole_tail() {
        let em = EnergyModel {
            idle_per_round: 1.0,
            sleep_per_round: 0.5,
            tx_per_message: 0.0,
            rx_per_message: 0.0,
        };
        // No finish round: the lifetime is the full run, so 5 awake rounds
        // plus 95 asleep.
        let m = metrics_one(5, None, 0, 0);
        assert!((em.node_energy(&m, 100) - (5.0 + 0.5 * 95.0)).abs() < 1e-12);
        // Degenerate accounting (awake > lifetime) saturates instead of
        // producing negative sleep.
        let m = metrics_one(10, None, 0, 0);
        assert!((em.node_energy(&m, 4) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_round_run_costs_nothing() {
        let em = EnergyModel::default();
        let m = metrics_one(0, None, 0, 0);
        assert_eq!(em.node_energy(&m, 0), 0.0);
        let rep = em.report(&RunMetrics { per_node: vec![], total_rounds: 0, active_rounds: 0 });
        assert_eq!(rep.total, 0.0);
        assert_eq!(rep.mean, 0.0);
        assert_eq!(rep.max, 0.0);
        assert!(rep.per_node.is_empty());
    }

    #[test]
    fn sleep_dominated_lifetime_is_priced_by_the_sleep_rate() {
        let em = EnergyModel::default();
        // Algorithm 1's shape: awake O(1) rounds of a padded Θ(n³)-round
        // schedule. 3 awake rounds out of a 1_000_000-round lifetime.
        let m = metrics_one(3, Some(999_999), 2, 1);
        let e = em.node_energy(&m, 1_000_000);
        let expected = 3.0 + 0.02 * 999_997.0 + 0.4 * 2.0 + 0.2 * 1.0;
        assert!((e - expected).abs() < 1e-9);
        // Sleeping through the schedule beats idling through it by ~50x.
        let all_idle = em.idle_per_round * 1_000_000.0;
        assert!(e < all_idle / 40.0);
    }
}
