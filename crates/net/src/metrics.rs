//! Per-node and aggregate run metrics, and the paper's complexity measures.

use crate::Round;
use serde::{Deserialize, Serialize};

/// Per-node counters collected by the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Rounds this node was awake (the paper's a_v).
    pub awake_rounds: u64,
    /// Round at which the node terminated, if it did.
    pub finish_round: Option<Round>,
    /// First round at which [`Protocol::output`](crate::Protocol::output)
    /// became `Some` (the node "committed" its output).
    pub decide_round: Option<Round>,
    /// Messages this node sent.
    pub messages_sent: u64,
    /// Messages delivered to this node.
    pub messages_received: u64,
    /// Messages addressed to this node while it was asleep (dropped, per
    /// the sleeping model).
    pub messages_dropped: u64,
    /// Messages addressed to this node lost by injected transit failures
    /// (see [`EngineConfig::loss_probability`](crate::EngineConfig)).
    #[serde(default)]
    pub messages_lost: u64,
    /// Total bits this node sent.
    pub bits_sent: u64,
}

/// Aggregate metrics for a completed run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-node counters, indexed by node id.
    pub per_node: Vec<NodeMetrics>,
    /// Worst-case round complexity: rounds elapsed until the last node
    /// terminated (`max finish_round + 1`; 0 for an empty network).
    pub total_rounds: u64,
    /// Rounds the engine actually processed (rounds with ≥ 1 awake node).
    pub active_rounds: u64,
}

impl RunMetrics {
    /// The four complexity measures of the paper plus communication totals.
    pub fn summary(&self) -> ComplexitySummary {
        let n = self.per_node.len();
        let total_awake: u64 = self.per_node.iter().map(|m| m.awake_rounds).sum();
        let worst_awake = self.per_node.iter().map(|m| m.awake_rounds).max().unwrap_or(0);
        let total_finish: u64 = self
            .per_node
            .iter()
            .map(|m| m.finish_round.map(|r| r + 1).unwrap_or(self.total_rounds))
            .sum();
        let total_messages: u64 = self.per_node.iter().map(|m| m.messages_sent).sum();
        let total_bits: u64 = self.per_node.iter().map(|m| m.bits_sent).sum();
        let dropped_messages: u64 = self.per_node.iter().map(|m| m.messages_dropped).sum();
        let lost_messages: u64 = self.per_node.iter().map(|m| m.messages_lost).sum();
        ComplexitySummary {
            n,
            node_avg_awake: if n == 0 { 0.0 } else { total_awake as f64 / n as f64 },
            worst_awake,
            worst_round: self.total_rounds,
            node_avg_round: if n == 0 { 0.0 } else { total_finish as f64 / n as f64 },
            active_rounds: self.active_rounds,
            total_messages,
            dropped_messages,
            lost_messages,
            total_bits,
        }
    }
}

/// The paper's complexity measures for one run.
///
/// *Awake* measures count only rounds a node spent awake; *round* measures
/// count wall-clock rounds including sleep (the traditional measure).
#[derive(Debug, Clone, Copy, PartialEq, Deserialize)]
pub struct ComplexitySummary {
    /// Number of nodes.
    pub n: usize,
    /// Node-averaged awake complexity: (1/n)·Σ_v a_v.
    pub node_avg_awake: f64,
    /// Worst-case awake complexity: max_v a_v.
    pub worst_awake: u64,
    /// Worst-case round complexity: rounds until the last node finished.
    pub worst_round: u64,
    /// Node-averaged round complexity: (1/n)·Σ_v (finish round of v + 1).
    pub node_avg_round: f64,
    /// Rounds the engine actually processed (diagnostic; not a paper
    /// measure).
    pub active_rounds: u64,
    /// Total messages sent.
    pub total_messages: u64,
    /// Messages dropped because the addressee was asleep.
    pub dropped_messages: u64,
    /// Messages lost to injected transit failures (serde-defaulted: absent
    /// in JSON written before the field existed, and omitted when zero).
    #[serde(default)]
    pub lost_messages: u64,
    /// Total bits sent.
    pub total_bits: u64,
}

// Hand-written so `lost_messages` is *omitted when zero*: every summary
// from a loss-free run — i.e. every artifact the byte-identity suites
// pin — serializes to exactly the bytes the derived impl produced before
// the field existed.
impl Serialize for ComplexitySummary {
    fn to_value(&self) -> serde::Value {
        let mut obj = vec![
            ("n".to_string(), Serialize::to_value(&self.n)),
            ("node_avg_awake".to_string(), Serialize::to_value(&self.node_avg_awake)),
            ("worst_awake".to_string(), Serialize::to_value(&self.worst_awake)),
            ("worst_round".to_string(), Serialize::to_value(&self.worst_round)),
            ("node_avg_round".to_string(), Serialize::to_value(&self.node_avg_round)),
            ("active_rounds".to_string(), Serialize::to_value(&self.active_rounds)),
            ("total_messages".to_string(), Serialize::to_value(&self.total_messages)),
            ("dropped_messages".to_string(), Serialize::to_value(&self.dropped_messages)),
        ];
        if self.lost_messages > 0 {
            obj.push(("lost_messages".to_string(), Serialize::to_value(&self.lost_messages)));
        }
        obj.push(("total_bits".to_string(), Serialize::to_value(&self.total_bits)));
        serde::Value::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(awake: u64, finish: Round) -> NodeMetrics {
        NodeMetrics {
            awake_rounds: awake,
            finish_round: Some(finish),
            decide_round: Some(finish),
            messages_sent: awake,
            messages_received: 0,
            messages_dropped: 1,
            messages_lost: 0,
            bits_sent: 8 * awake,
        }
    }

    #[test]
    fn summary_math() {
        let m = RunMetrics {
            per_node: vec![node(3, 9), node(5, 19), node(1, 4), node(3, 9)],
            total_rounds: 20,
            active_rounds: 12,
        };
        let s = m.summary();
        assert_eq!(s.n, 4);
        assert!((s.node_avg_awake - 3.0).abs() < 1e-12);
        assert_eq!(s.worst_awake, 5);
        assert_eq!(s.worst_round, 20);
        // finish+1: 10, 20, 5, 10 -> mean 11.25
        assert!((s.node_avg_round - 11.25).abs() < 1e-12);
        assert_eq!(s.total_messages, 12);
        assert_eq!(s.dropped_messages, 4);
        assert_eq!(s.lost_messages, 0);
        assert_eq!(s.total_bits, 96);
        assert_eq!(s.active_rounds, 12);
    }

    #[test]
    fn summary_sums_lost_messages() {
        let mut a = node(1, 2);
        a.messages_lost = 3;
        let mut b = node(1, 2);
        b.messages_lost = 4;
        let m = RunMetrics { per_node: vec![a, b], total_rounds: 3, active_rounds: 3 };
        assert_eq!(m.summary().lost_messages, 7);
    }

    #[test]
    fn lost_messages_field_is_omitted_when_zero() {
        let m = RunMetrics {
            per_node: vec![node(3, 9), node(5, 19)],
            total_rounds: 20,
            active_rounds: 12,
        };
        let mut s = m.summary();
        let clean = serde::value::to_compact_string(&s.to_value());
        assert!(!clean.contains("lost_messages"), "zero-loss summary must keep legacy bytes");
        s.lost_messages = 2;
        let lossy = serde::value::to_compact_string(&s.to_value());
        assert!(lossy.contains("\"lost_messages\":2"));
        // Field order: between dropped_messages and total_bits.
        let d = lossy.find("dropped_messages").unwrap();
        let l = lossy.find("lost_messages").unwrap();
        let t = lossy.find("total_bits").unwrap();
        assert!(d < l && l < t);
    }

    #[test]
    fn empty_network_summary() {
        let m = RunMetrics { per_node: vec![], total_rounds: 0, active_rounds: 0 };
        let s = m.summary();
        assert_eq!(s.n, 0);
        assert_eq!(s.node_avg_awake, 0.0);
        assert_eq!(s.worst_awake, 0);
    }

    #[test]
    fn unfinished_nodes_charged_total_rounds() {
        let mut unfinished = node(2, 0);
        unfinished.finish_round = None;
        let m = RunMetrics {
            per_node: vec![unfinished, node(2, 3)],
            total_rounds: 10,
            active_rounds: 10,
        };
        // (10 + 4) / 2
        assert!((m.summary().node_avg_round - 7.0).abs() < 1e-12);
    }
}
