//! The event-driven sleeping-model round engine.
//!
//! Since the sans-io refactor, the round semantics live in
//! [`SleepyEngine`](crate::SleepyEngine) (`statemachine` module) and the
//! functions here are thin drivers: they run protocol callbacks whenever
//! the state machine asks ([`EngineOutput::PollSend`] /
//! [`EngineOutput::PollReceive`]), move payloads between outboxes and
//! inboxes, and forward trace outputs into the caller's sink. The
//! pre-refactor monolithic loop survives as
//! [`run_protocol_with_sink_legacy`] — a differential oracle the test
//! suite holds the state machine byte-identical to.

use crate::error::EngineError;
use crate::fault::FaultPlan;
use crate::message::{Incoming, MessageSize, Outbox};
use crate::metrics::{NodeMetrics, RunMetrics};
use crate::protocol::{Action, NodeCtx, Protocol};
use crate::sink::{NullSink, TraceBuffer, TraceSink};
use crate::statemachine::{EngineInput, EngineOutput, OutMsg, SleepyEngine};
use crate::tape::{Tape, TapeRecorder};
use crate::trace::{Trace, TraceEvent};
use crate::{alarm::AlarmKind, Round};
use sleepy_graph::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Abort with [`EngineError::MaxRoundsExceeded`] if the round counter
    /// passes this value. The default is effectively unlimited; set a cap in
    /// tests and failure-injection experiments.
    pub max_rounds: Round,
    /// Record wake/sleep/terminate events into a [`Trace`].
    pub trace: bool,
    /// Additionally record one event per routed message (voluminous).
    pub trace_messages: bool,
    /// If `Some(budget)`, abort with
    /// [`EngineError::MessageTooLarge`] when a message exceeds `budget`
    /// bits — an executable check of the CONGEST(log n) restriction; see
    /// [`congest_bits_budget`](crate::congest_bits_budget).
    pub congest_bits: Option<usize>,
    /// Failure injection: each message is independently lost in transit
    /// with this probability (on top of the model's dropping at sleeping
    /// receivers). 0.0 = the paper's reliable model. Losses are
    /// deterministic given [`EngineConfig::loss_seed`] and are counted in
    /// [`NodeMetrics::messages_lost`].
    ///
    /// This is the legacy spelling of [`FaultPlan::Iid`]; it applies only
    /// when [`EngineConfig::fault`] is [`FaultPlan::None`] (see
    /// [`EngineConfig::effective_fault`]).
    pub loss_probability: f64,
    /// Seed for the loss process.
    pub loss_seed: u64,
    /// The generalized fault process (burst loss, link partitions, node
    /// crashes — see [`FaultPlan`]). When set to anything other than
    /// [`FaultPlan::None`] it replaces the legacy loss fields.
    pub fault: FaultPlan,
}

impl EngineConfig {
    /// The fault plan this configuration effectively runs under: an
    /// explicit [`EngineConfig::fault`] wins; otherwise a nonzero
    /// [`EngineConfig::loss_probability`] defines the equivalent
    /// [`FaultPlan::Iid`] (byte-identical decisions); otherwise no
    /// faults.
    pub fn effective_fault(&self) -> FaultPlan {
        if !self.fault.is_none() {
            self.fault.clone()
        } else if self.loss_probability > 0.0 {
            FaultPlan::Iid { probability: self.loss_probability, seed: self.loss_seed }
        } else {
            FaultPlan::None
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: Round::MAX / 4,
            trace: false,
            trace_messages: false,
            congest_bits: None,
            loss_probability: 0.0,
            loss_seed: 0,
            fault: FaultPlan::None,
        }
    }
}

/// The result of a completed run: per-node outputs, metrics, and the
/// optional trace.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// Final outputs, indexed by node id (`Some` for every node, since the
    /// run only completes when all nodes have terminated).
    pub outputs: Vec<Option<O>>,
    /// Collected metrics.
    pub metrics: RunMetrics,
    /// The trace, if [`EngineConfig::trace`] was set.
    pub trace: Option<Trace>,
}

/// Node lifecycle inside the legacy engine loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Awake,
    Asleep,
    Done,
}

/// Runs `protocol` instances (one per node, built by `factory`) on `graph`
/// until every node terminates.
///
/// All nodes start awake at round 0. Node iteration within a round is in
/// ascending id order, and all randomness must live inside the protocol
/// values, so runs are fully deterministic.
///
/// # Errors
///
/// See [`EngineError`]; apart from the configurable round cap, every error
/// indicates a protocol bug (invalid port, sleeping into the past,
/// terminating without output, oversized message, or a deadlock where all
/// unfinished nodes sleep forever).
///
/// # Example
///
/// See the [crate-level documentation](crate) for a complete protocol.
pub fn run_protocol<P, F>(
    graph: &Graph,
    config: &EngineConfig,
    factory: F,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(NodeId, &NodeCtx) -> P,
{
    if config.trace {
        let mut buffer = TraceBuffer::new(config.trace_messages);
        let mut outcome = run_protocol_with_sink(graph, config, factory, &mut buffer)?;
        outcome.trace = Some(buffer.into_trace());
        Ok(outcome)
    } else {
        run_protocol_with_sink(graph, config, factory, &mut NullSink)
    }
}

/// Runs `protocol` instances on `graph` like [`run_protocol`], streaming
/// every engine event into `sink` instead of (or in addition to)
/// buffering a [`Trace`].
///
/// The sink observes the run in deterministic order — see
/// [`TraceSink`](crate::TraceSink) for the exact per-round sequence.
/// Message-level events are generated only when
/// [`TraceSink::wants_messages`](crate::TraceSink::wants_messages) is
/// true; [`EngineConfig::trace`] and
/// [`EngineConfig::trace_messages`] are ignored here (they configure
/// [`run_protocol`]'s implicit buffer sink), so `outcome.trace` is always
/// `None`.
///
/// # Errors
///
/// See [`run_protocol`].
pub fn run_protocol_with_sink<P, F>(
    graph: &Graph,
    config: &EngineConfig,
    factory: F,
    sink: &mut dyn TraceSink,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(NodeId, &NodeCtx) -> P,
{
    drive(graph, config, factory, sink, AlarmKind::default(), None)
}

/// [`run_protocol_with_sink`] with an explicit wake-alarm queue choice.
///
/// Both [`AlarmKind`]s produce byte-identical runs; the choice only
/// matters for performance, and `fleet bench-wakes` uses this entry point
/// to hold them equivalent before timing them.
///
/// # Errors
///
/// See [`run_protocol`].
pub fn run_protocol_with_alarms<P, F>(
    graph: &Graph,
    config: &EngineConfig,
    factory: F,
    sink: &mut dyn TraceSink,
    alarms: AlarmKind,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(NodeId, &NodeCtx) -> P,
{
    drive(graph, config, factory, sink, alarms, None)
}

/// Runs a protocol like [`run_protocol_with_sink`] while recording the
/// run as a [`Tape`]: the graph and engine config, every
/// [`EngineInput`] the driver fed, and a digest of every
/// [`EngineOutput`] the state machine emitted.
///
/// The tape is returned even when the run fails — the recorded error is
/// part of the conformance artifact (replaying must reproduce it). The
/// returned tape's [`label`](crate::tape::TapeHeader::label) and
/// [`seed`](crate::tape::TapeHeader::seed) are empty/zero; callers that
/// archive tapes stamp them afterwards.
pub fn run_protocol_taped<P, F>(
    graph: &Graph,
    config: &EngineConfig,
    factory: F,
    sink: &mut dyn TraceSink,
) -> (Result<RunOutcome<P::Output>, EngineError>, Tape)
where
    P: Protocol,
    F: FnMut(NodeId, &NodeCtx) -> P,
{
    let mut recorder = TapeRecorder::new(graph, config, sink.wants_messages());
    let result = drive(graph, config, factory, sink, AlarmKind::default(), Some(&mut recorder));
    let error = result.as_ref().err().map(|e| e.to_string());
    (result, recorder.finish(error))
}

/// The shared driver: builds the protocol instances, then serves the
/// [`SleepyEngine`]'s output stream — poll prompts run protocol
/// callbacks, `Deliver` outputs move payloads into inboxes, trace
/// outputs feed the sink (and everything feeds the tape recorder when
/// present).
fn drive<P, F>(
    graph: &Graph,
    config: &EngineConfig,
    mut factory: F,
    sink: &mut dyn TraceSink,
    alarms: AlarmKind,
    mut tap: Option<&mut TapeRecorder>,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(NodeId, &NodeCtx) -> P,
{
    let n = graph.n();
    let mut nodes: Vec<P> = Vec::with_capacity(n);
    for id in 0..n as NodeId {
        let ctx = NodeCtx { id, n, degree: graph.degree(id), round: 0 };
        nodes.push(factory(id, &ctx));
    }
    let mut sm = SleepyEngine::with_alarms(graph, config, sink.wants_messages(), alarms);

    // Reusable message plumbing. `payloads` holds the most recent sender's
    // messages in emission order; `Deliver` outputs index into it (they are
    // always drained before the next `PollSend` refills it).
    let mut outbox: Outbox<P::Msg> = Outbox::new();
    let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut payloads: Vec<P::Msg> = Vec::new();

    let mut failure: Option<EngineError> = None;
    while let Some(out) = sm.poll_output() {
        if let Some(t) = tap.as_deref_mut() {
            t.record_output(&out);
        }
        match out {
            EngineOutput::RoundBegin { round, awake } => sink.round_begin(round, awake as usize),
            EngineOutput::Event(e) => sink.event(&e),
            EngineOutput::Deliver { to, port, from: _, index } => {
                inboxes[to as usize].push(Incoming { port, msg: payloads[index].clone() });
            }
            EngineOutput::PollSend { node, round } => {
                debug_assert!(failure.is_none(), "no prompt survives a failed input");
                let ctx = NodeCtx { id: node, n, degree: graph.degree(node), round };
                outbox.reset(ctx.degree);
                nodes[node as usize].send(&ctx, &mut outbox);
                payloads.clear();
                let mut msgs = Vec::with_capacity(outbox.items().len());
                for (port, msg) in outbox.items().drain(..) {
                    msgs.push(OutMsg { port, bits: msg.bits() });
                    payloads.push(msg);
                }
                let input = EngineInput::Sends { node, msgs };
                if let Some(t) = tap.as_deref_mut() {
                    t.record_input(&input);
                }
                if let Err(e) = sm.handle_input(input) {
                    // Keep draining: outputs queued before the failure are
                    // part of the sink-visible (and taped) stream, exactly
                    // as the legacy loop emitted them eagerly.
                    failure = Some(e);
                }
            }
            EngineOutput::PollReceive { node, round } => {
                debug_assert!(failure.is_none(), "no prompt survives a failed input");
                let ctx = NodeCtx { id: node, n, degree: graph.degree(node), round };
                let action = nodes[node as usize].receive(&ctx, &inboxes[node as usize]);
                // The send phase completed before the first receive of the
                // round, so this inbox is final and can be recycled now.
                inboxes[node as usize].clear();
                let output_some = nodes[node as usize].output().is_some();
                let input = EngineInput::Step { node, action, output_some };
                if let Some(t) = tap.as_deref_mut() {
                    t.record_input(&input);
                }
                if let Err(e) = sm.handle_input(input) {
                    failure = Some(e);
                }
            }
            EngineOutput::Finished => break,
        }
    }
    if let Some(e) = failure {
        return Err(e);
    }
    debug_assert!(sm.is_finished(), "output stream ended without Finished");
    let outputs: Vec<Option<P::Output>> = nodes.iter().map(|p| p.output()).collect();
    debug_assert!(outputs.iter().all(Option::is_some));
    Ok(RunOutcome { outputs, metrics: sm.finish(), trace: None })
}

/// The pre-refactor monolithic round loop, kept verbatim as the
/// differential-testing oracle for the sans-io state machine: the
/// conformance suite (`tests/engine_statemachine.rs`) holds
/// [`run_protocol_with_sink`] byte-identical to this function on random
/// graphs × protocols × loss rates. Production callers should not use it.
///
/// # Errors
///
/// See [`run_protocol`].
pub fn run_protocol_with_sink_legacy<P, F>(
    graph: &Graph,
    config: &EngineConfig,
    mut factory: F,
    sink: &mut dyn TraceSink,
) -> Result<RunOutcome<P::Output>, EngineError>
where
    P: Protocol,
    F: FnMut(NodeId, &NodeCtx) -> P,
{
    let n = graph.n();
    let wants_messages = sink.wants_messages();
    let mut nodes: Vec<P> = Vec::with_capacity(n);
    for id in 0..n as NodeId {
        let ctx = NodeCtx { id, n, degree: graph.degree(id), round: 0 };
        nodes.push(factory(id, &ctx));
    }
    let mut fault = config.effective_fault().build();

    let mut status = vec![Status::Awake; n];
    let mut metrics: Vec<NodeMetrics> = vec![NodeMetrics::default(); n];

    // Nodes awake in the round currently being processed, ascending ids.
    let mut active: Vec<NodeId> = (0..n as NodeId).collect();
    // Nodes that chose `Continue` and carry over to the next round.
    let mut carry: Vec<NodeId> = Vec::with_capacity(n);
    // Sleep queue: (wake_round, node id).
    let mut wake_heap: BinaryHeap<Reverse<(Round, NodeId)>> = BinaryHeap::new();

    // Reusable message plumbing.
    let mut outbox: Outbox<P::Msg> = Outbox::new();
    let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut touched_inboxes: Vec<NodeId> = Vec::new();

    let mut remaining = n;
    let mut round: Round = 0;
    let mut active_rounds: u64 = 0;
    let mut max_finish: Round = 0;

    while remaining > 0 {
        // Choose the next round with any awake node.
        if active.is_empty() {
            match wake_heap.peek() {
                Some(&Reverse((r, _))) => round = r,
                None => return Err(EngineError::Deadlock { round, unfinished: remaining }),
            }
        }
        if round > config.max_rounds {
            return Err(EngineError::MaxRoundsExceeded {
                max_rounds: config.max_rounds,
                unfinished: remaining,
            });
        }
        // Wake scheduled sleepers. They pop in ascending id order for equal
        // rounds; merge them with the carried-over awake nodes.
        let mut woken: Vec<NodeId> = Vec::new();
        while let Some(&Reverse((r, v))) = wake_heap.peek() {
            debug_assert!(r >= round, "missed a wake-up");
            if r != round {
                break;
            }
            wake_heap.pop();
            status[v as usize] = Status::Awake;
            woken.push(v);
        }
        if !woken.is_empty() {
            active = merge_sorted(&active, &woken);
        }
        debug_assert!(active.windows(2).all(|w| w[0] < w[1]));
        active_rounds += 1;
        sink.round_begin(round, active.len());
        for &v in &woken {
            sink.event(&TraceEvent::Wake { round, node: v });
        }

        // --- Send phase ---
        for &v in &active {
            let ctx = NodeCtx { id: v, n, degree: graph.degree(v), round };
            outbox.reset(ctx.degree);
            nodes[v as usize].send(&ctx, &mut outbox);
            for (port, msg) in outbox.items().drain(..) {
                if port >= ctx.degree {
                    return Err(EngineError::InvalidPort { node: v, port, degree: ctx.degree });
                }
                let bits = msg.bits();
                if let Some(budget) = config.congest_bits {
                    if bits > budget {
                        return Err(EngineError::MessageTooLarge { node: v, bits, budget });
                    }
                }
                let vm = &mut metrics[v as usize];
                vm.messages_sent += 1;
                vm.bits_sent += bits as u64;
                let dst = graph.endpoint(v, port);
                if let Some(model) = fault.as_mut() {
                    if model.message_lost(round, v, dst) {
                        metrics[dst as usize].messages_lost += 1;
                        if wants_messages {
                            sink.event(&TraceEvent::MessageLost { round, from: v, to: dst });
                        }
                        continue;
                    }
                }
                let delivered = status[dst as usize] == Status::Awake;
                if wants_messages {
                    sink.event(&TraceEvent::Message {
                        round,
                        from: v,
                        to: dst,
                        dropped: !delivered,
                    });
                }
                if delivered {
                    let back_port = graph
                        .port_to(dst, v)
                        .expect("endpoint/port_to must be mutually consistent");
                    if inboxes[dst as usize].is_empty() {
                        touched_inboxes.push(dst);
                    }
                    inboxes[dst as usize].push(Incoming { port: back_port, msg });
                    metrics[dst as usize].messages_received += 1;
                } else {
                    metrics[dst as usize].messages_dropped += 1;
                }
            }
        }

        // --- Receive phase ---
        carry.clear();
        for &v in &active {
            let ctx = NodeCtx { id: v, n, degree: graph.degree(v), round };
            let action = nodes[v as usize].receive(&ctx, &inboxes[v as usize]);
            let vm = &mut metrics[v as usize];
            vm.awake_rounds += 1;
            if vm.decide_round.is_none() && nodes[v as usize].output().is_some() {
                vm.decide_round = Some(round);
                sink.event(&TraceEvent::Decide { round, node: v });
            }
            match action {
                Action::Continue => carry.push(v),
                Action::SleepUntil(wake_at) => {
                    if wake_at <= round {
                        return Err(EngineError::SleepIntoPast { node: v, round, wake_at });
                    }
                    status[v as usize] = Status::Asleep;
                    wake_heap.push(Reverse((wake_at, v)));
                    sink.event(&TraceEvent::Sleep { round, node: v, until: wake_at });
                }
                Action::Terminate => {
                    if nodes[v as usize].output().is_none() {
                        return Err(EngineError::TerminatedWithoutOutput { node: v, round });
                    }
                    status[v as usize] = Status::Done;
                    vm.finish_round = Some(round);
                    max_finish = max_finish.max(round);
                    remaining -= 1;
                    sink.event(&TraceEvent::Terminate { round, node: v });
                }
            }
        }
        for &v in touched_inboxes.drain(..).as_ref() {
            inboxes[v as usize].clear();
        }
        std::mem::swap(&mut active, &mut carry);
        round += 1;
    }

    let outputs: Vec<Option<P::Output>> = nodes.iter().map(|p| p.output()).collect();
    debug_assert!(outputs.iter().all(Option::is_some));
    let total_rounds = if n == 0 { 0 } else { max_finish + 1 };
    Ok(RunOutcome {
        outputs,
        metrics: RunMetrics { per_node: metrics, total_rounds, active_rounds },
        trace: None,
    })
}

/// Merges two ascending id lists into one (both deduplicated by
/// construction: a node cannot be both carried over and woken).
pub(crate) fn merge_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::generators;
    use sleepy_graph::Port;

    /// Terminates immediately with its own id.
    struct Immediate(NodeId);
    impl Protocol for Immediate {
        type Msg = ();
        type Output = NodeId;
        fn send(&mut self, _: &NodeCtx, _: &mut Outbox<()>) {}
        fn receive(&mut self, _: &NodeCtx, _: &[Incoming<()>]) -> Action {
            Action::Terminate
        }
        fn output(&self) -> Option<NodeId> {
            Some(self.0)
        }
    }

    #[test]
    fn immediate_termination() {
        let g = generators::cycle(4).unwrap();
        let run = run_protocol(&g, &EngineConfig::default(), |id, _| Immediate(id)).unwrap();
        assert_eq!(run.metrics.total_rounds, 1);
        assert_eq!(run.metrics.active_rounds, 1);
        for (id, out) in run.outputs.iter().enumerate() {
            assert_eq!(*out, Some(id as NodeId));
        }
        for m in &run.metrics.per_node {
            assert_eq!(m.awake_rounds, 1);
            assert_eq!(m.finish_round, Some(0));
        }
    }

    /// Sleeps for a long interval then terminates; checks idle-round
    /// skipping.
    struct LongSleeper {
        done_after_wake: bool,
    }
    impl Protocol for LongSleeper {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &NodeCtx, _: &mut Outbox<()>) {}
        fn receive(&mut self, ctx: &NodeCtx, _: &[Incoming<()>]) -> Action {
            if ctx.round == 0 {
                Action::SleepUntil(1_000_000)
            } else {
                self.done_after_wake = true;
                Action::Terminate
            }
        }
        fn output(&self) -> Option<()> {
            self.done_after_wake.then_some(())
        }
    }

    #[test]
    fn engine_skips_idle_rounds() {
        let g = generators::empty(3).unwrap();
        let run = run_protocol(&g, &EngineConfig::default(), |_, _| LongSleeper {
            done_after_wake: false,
        })
        .unwrap();
        assert_eq!(run.metrics.total_rounds, 1_000_001);
        // Only two rounds were processed: round 0 and round 1_000_000.
        assert_eq!(run.metrics.active_rounds, 2);
        for m in &run.metrics.per_node {
            assert_eq!(m.awake_rounds, 2);
        }
    }

    /// Node 0 stays awake and broadcasts every round; node 1 sleeps rounds
    /// 1..=3; messages to it must be dropped while asleep and delivered
    /// while awake.
    struct DropProbe {
        id: NodeId,
        heard: u64,
    }
    impl Protocol for DropProbe {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<u64>) {
            if self.id == 0 {
                out.broadcast(ctx.round);
            }
        }
        fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Action {
            self.heard += inbox.len() as u64;
            match (self.id, ctx.round) {
                (1, 0) => Action::SleepUntil(4),
                (1, 4) => Action::Terminate,
                (_, r) if r >= 5 => Action::Terminate,
                _ => Action::Continue,
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.heard)
        }
    }

    #[test]
    fn messages_to_sleeping_nodes_drop() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let run =
            run_protocol(&g, &EngineConfig::default(), |id, _| DropProbe { id, heard: 0 }).unwrap();
        // Node 1 hears round 0 and round 4 broadcasts only.
        assert_eq!(run.outputs[1], Some(2));
        // Dropped while asleep (rounds 1,2,3) and after termination (round 5).
        assert_eq!(run.metrics.per_node[1].messages_dropped, 4);
        assert_eq!(run.metrics.per_node[1].messages_received, 2);
        assert_eq!(run.metrics.per_node[0].messages_sent, 6); // rounds 0..=5
    }

    struct BadPort;
    impl Protocol for BadPort {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &NodeCtx, out: &mut Outbox<()>) {
            out.send(99, ());
        }
        fn receive(&mut self, _: &NodeCtx, _: &[Incoming<()>]) -> Action {
            Action::Continue
        }
        fn output(&self) -> Option<()> {
            None
        }
    }

    #[test]
    fn invalid_port_is_an_error() {
        let g = generators::path(2).unwrap();
        let err = run_protocol(&g, &EngineConfig::default(), |_, _| BadPort).unwrap_err();
        assert!(matches!(err, EngineError::InvalidPort { port: 99, .. }));
    }

    struct SleepsIntoPast;
    impl Protocol for SleepsIntoPast {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &NodeCtx, _: &mut Outbox<()>) {}
        fn receive(&mut self, ctx: &NodeCtx, _: &[Incoming<()>]) -> Action {
            if ctx.round < 3 {
                Action::Continue
            } else {
                Action::SleepUntil(3)
            }
        }
        fn output(&self) -> Option<()> {
            None
        }
    }

    #[test]
    fn sleep_into_past_is_an_error() {
        let g = generators::empty(1).unwrap();
        let err = run_protocol(&g, &EngineConfig::default(), |_, _| SleepsIntoPast).unwrap_err();
        assert!(matches!(err, EngineError::SleepIntoPast { round: 3, wake_at: 3, .. }));
    }

    struct NeverEnds;
    impl Protocol for NeverEnds {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &NodeCtx, _: &mut Outbox<()>) {}
        fn receive(&mut self, _: &NodeCtx, _: &[Incoming<()>]) -> Action {
            Action::Continue
        }
        fn output(&self) -> Option<()> {
            None
        }
    }

    #[test]
    fn round_cap_enforced() {
        let g = generators::empty(2).unwrap();
        let cfg = EngineConfig { max_rounds: 10, ..EngineConfig::default() };
        let err = run_protocol(&g, &cfg, |_, _| NeverEnds).unwrap_err();
        assert!(matches!(err, EngineError::MaxRoundsExceeded { max_rounds: 10, unfinished: 2 }));
    }

    struct TerminatesSilently;
    impl Protocol for TerminatesSilently {
        type Msg = ();
        type Output = ();
        fn send(&mut self, _: &NodeCtx, _: &mut Outbox<()>) {}
        fn receive(&mut self, _: &NodeCtx, _: &[Incoming<()>]) -> Action {
            Action::Terminate
        }
        fn output(&self) -> Option<()> {
            None
        }
    }

    #[test]
    fn terminate_without_output_is_an_error() {
        let g = generators::empty(1).unwrap();
        let err =
            run_protocol(&g, &EngineConfig::default(), |_, _| TerminatesSilently).unwrap_err();
        assert!(matches!(err, EngineError::TerminatedWithoutOutput { node: 0, round: 0 }));
    }

    struct BigTalker;
    impl Protocol for BigTalker {
        type Msg = u128;
        type Output = ();
        fn send(&mut self, _: &NodeCtx, out: &mut Outbox<u128>) {
            out.broadcast(1);
        }
        fn receive(&mut self, _: &NodeCtx, _: &[Incoming<u128>]) -> Action {
            Action::Terminate
        }
        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn congest_budget_enforced() {
        let g = generators::path(2).unwrap();
        let cfg = EngineConfig { congest_bits: Some(64), ..EngineConfig::default() };
        let err = run_protocol(&g, &cfg, |_, _| BigTalker).unwrap_err();
        assert!(matches!(err, EngineError::MessageTooLarge { bits: 128, budget: 64, .. }));
        // With a roomier budget it passes.
        let cfg = EngineConfig { congest_bits: Some(128), ..EngineConfig::default() };
        assert!(run_protocol(&g, &cfg, |_, _| BigTalker).is_ok());
    }

    /// Two nodes ping-pong: odd node sleeps odd rounds, even node sleeps
    /// even rounds; they never exchange a message because the sender is
    /// awake exactly when the receiver sleeps.
    struct Alternator {
        id: NodeId,
        heard: u64,
    }
    impl Protocol for Alternator {
        type Msg = u8;
        type Output = u64;
        fn send(&mut self, _: &NodeCtx, out: &mut Outbox<u8>) {
            out.broadcast(1);
        }
        fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u8>]) -> Action {
            self.heard += inbox.len() as u64;
            if ctx.round >= 6 {
                return Action::Terminate;
            }
            Action::SleepUntil(ctx.round + 2)
        }
        fn output(&self) -> Option<u64> {
            Some(self.heard)
        }
    }

    #[test]
    fn disjoint_wake_schedules_never_communicate() {
        let g = generators::path(2).unwrap();
        let run = run_protocol(&g, &EngineConfig::default(), |id, _| {
            // Node 1 starts by sleeping odd rounds: shift its phase by
            // sleeping at round 0 to round 1.
            Alternator { id, heard: 0 }
        })
        .unwrap();
        // Same phase -> they actually always hear each other; sanity check
        // the complementary case by phase-shifting node 1.
        assert!(run.outputs[0].unwrap() > 0);

        struct Shifted(Alternator);
        impl Protocol for Shifted {
            type Msg = u8;
            type Output = u64;
            fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<u8>) {
                if self.0.id == 0 || ctx.round > 0 {
                    self.0.send(ctx, out);
                }
            }
            fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u8>]) -> Action {
                if self.0.id == 1 && ctx.round == 0 {
                    return Action::SleepUntil(1);
                }
                self.0.receive(ctx, inbox)
            }
            fn output(&self) -> Option<u64> {
                if self.0.id == 1 {
                    Some(self.0.heard)
                } else {
                    self.0.output()
                }
            }
        }
        let run = run_protocol(&g, &EngineConfig::default(), |id, _| {
            Shifted(Alternator { id, heard: 0 })
        })
        .unwrap();
        // Node 0 awake rounds: 0,2,4,6...; node 1: 1,3,5,... -> no message
        // is ever delivered to node 1 or node 0 after the shift.
        assert_eq!(run.outputs[1], Some(0));
    }

    #[test]
    fn trace_records_lifecycle() {
        let g = generators::empty(1).unwrap();
        let cfg = EngineConfig { trace: true, ..EngineConfig::default() };
        let run = run_protocol(&g, &cfg, |_, _| LongSleeper { done_after_wake: false }).unwrap();
        let t = run.trace.unwrap();
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Sleep { node: 0, until: 1_000_000, .. })));
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Wake { node: 0, round: 1_000_000 })));
        assert!(t
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Terminate { node: 0, round: 1_000_000 })));
    }

    #[test]
    fn message_loss_injection() {
        // Node 0 broadcasts every round for 200 rounds on a star; with 30%
        // loss the leaves hear roughly 70% of the traffic.
        struct Chatter {
            id: NodeId,
            heard: u64,
        }
        impl Protocol for Chatter {
            type Msg = u8;
            type Output = u64;
            fn send(&mut self, _: &NodeCtx, out: &mut Outbox<u8>) {
                if self.id == 0 {
                    out.broadcast(1);
                }
            }
            fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u8>]) -> Action {
                self.heard += inbox.len() as u64;
                if ctx.round >= 199 {
                    Action::Terminate
                } else {
                    Action::Continue
                }
            }
            fn output(&self) -> Option<u64> {
                Some(self.heard)
            }
        }
        let g = generators::star(11).unwrap();
        let cfg = EngineConfig { loss_probability: 0.3, loss_seed: 42, ..EngineConfig::default() };
        let run = run_protocol(&g, &cfg, |id, _| Chatter { id, heard: 0 }).unwrap();
        let heard: u64 = run.outputs.iter().skip(1).map(|o| o.unwrap()).sum();
        let lost: u64 = run.metrics.per_node.iter().map(|m| m.messages_lost).sum();
        let sent = run.metrics.per_node[0].messages_sent;
        assert_eq!(sent, 2000);
        assert_eq!(heard + lost, sent, "every message is delivered or lost");
        let rate = lost as f64 / sent as f64;
        assert!((rate - 0.3).abs() < 0.05, "loss rate {rate} far from 0.3");
        // Deterministic per loss seed.
        let run2 = run_protocol(&g, &cfg, |id, _| Chatter { id, heard: 0 }).unwrap();
        assert_eq!(run.outputs, run2.outputs);
        // Zero probability means no loss machinery at all.
        let cfg0 = EngineConfig::default();
        let run0 = run_protocol(&g, &cfg0, |id, _| Chatter { id, heard: 0 }).unwrap();
        assert_eq!(run0.metrics.per_node.iter().map(|m| m.messages_lost).sum::<u64>(), 0);
    }

    /// `FaultPlan::Iid` must reproduce the legacy loss fields decision
    /// for decision — same RNG, same draw order — across both drivers.
    #[test]
    fn iid_fault_plan_is_byte_identical_to_legacy_loss_fields() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
        let legacy =
            EngineConfig { loss_probability: 0.2, loss_seed: 7, ..EngineConfig::default() };
        let planned = EngineConfig {
            fault: FaultPlan::Iid { probability: 0.2, seed: 7 },
            ..EngineConfig::default()
        };
        let mut a = TraceBuffer::new(true);
        let ra = run_protocol_with_sink(&g, &legacy, |id, _| DropProbe { id, heard: 0 }, &mut a)
            .unwrap();
        let mut b = TraceBuffer::new(true);
        let rb = run_protocol_with_sink(&g, &planned, |id, _| DropProbe { id, heard: 0 }, &mut b)
            .unwrap();
        assert_eq!(ra.outputs, rb.outputs);
        assert_eq!(ra.metrics, rb.metrics);
        assert_eq!(a.into_trace(), b.into_trace());
        // An explicit plan overrides the legacy fields.
        let both = EngineConfig {
            loss_probability: 0.9,
            loss_seed: 999,
            fault: FaultPlan::Iid { probability: 0.2, seed: 7 },
            ..EngineConfig::default()
        };
        let rc = run_protocol(&g, &both, |id, _| DropProbe { id, heard: 0 }).unwrap();
        assert_eq!(rc.outputs, ra.outputs);
    }

    /// The state-machine driver and the legacy loop agree under every
    /// fault plan, and each plan behaves as specified end to end.
    #[test]
    fn fault_plans_drive_both_loops_identically() {
        use crate::fault::{CrashWindow, LinkWindow};
        let g = generators::star(11).unwrap();
        let plans = [
            FaultPlan::Burst {
                p_enter: 0.1,
                p_exit: 0.2,
                loss_good: 0.02,
                loss_bad: 0.95,
                seed: 13,
            },
            FaultPlan::Partition { windows: vec![LinkWindow { a: 0, b: 3, start: 1, end: 4 }] },
            FaultPlan::Crash { windows: vec![CrashWindow { node: 5, start: 0, end: 200 }] },
        ];
        for plan in plans {
            let cfg = EngineConfig { fault: plan.clone(), ..EngineConfig::default() };
            let mut new_buf = TraceBuffer::new(true);
            let new_run =
                run_protocol_with_sink(&g, &cfg, |id, _| DropProbe { id, heard: 0 }, &mut new_buf)
                    .unwrap();
            let mut old_buf = TraceBuffer::new(true);
            let old_run = run_protocol_with_sink_legacy(
                &g,
                &cfg,
                |id, _| DropProbe { id, heard: 0 },
                &mut old_buf,
            )
            .unwrap();
            assert_eq!(new_run.outputs, old_run.outputs, "{plan:?}");
            assert_eq!(new_run.metrics, old_run.metrics, "{plan:?}");
            assert_eq!(new_buf.into_trace(), old_buf.into_trace(), "{plan:?}");
            let lost: u64 = new_run.metrics.per_node.iter().map(|m| m.messages_lost).sum();
            assert!(lost > 0, "{plan:?} should lose something on this workload");
        }
    }

    /// A node crashed for the whole run hears nothing; everyone else is
    /// untouched relative to a fault-free run.
    #[test]
    fn crash_windows_silence_exactly_the_crashed_node() {
        use crate::fault::CrashWindow;
        let g = generators::star(6).unwrap();
        let crashed = EngineConfig {
            fault: FaultPlan::Crash {
                windows: vec![CrashWindow { node: 2, start: 0, end: Round::MAX }],
            },
            ..EngineConfig::default()
        };
        let run = run_protocol(&g, &crashed, |id, _| DropProbe { id, heard: 0 }).unwrap();
        let clean =
            run_protocol(&g, &EngineConfig::default(), |id, _| DropProbe { id, heard: 0 }).unwrap();
        assert_eq!(run.outputs[2], Some(0), "crashed leaf hears nothing");
        for id in [1, 3, 4, 5] {
            assert_eq!(run.outputs[id], clean.outputs[id], "node {id} unaffected");
        }
        // The hub loses exactly the crashed leaf's replies... which a
        // DropProbe leaf never sends; node 2's inbound messages are the
        // only losses.
        let lost: u64 = run.metrics.per_node.iter().map(|m| m.messages_lost).sum();
        assert_eq!(lost, run.metrics.per_node[2].messages_lost);
        assert!(lost > 0);
    }

    #[test]
    fn empty_graph_runs() {
        let g = generators::empty(0).unwrap();
        let run = run_protocol(&g, &EngineConfig::default(), |id, _| Immediate(id)).unwrap();
        assert_eq!(run.metrics.total_rounds, 0);
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn merge_sorted_works() {
        assert_eq!(merge_sorted(&[1, 4, 6], &[2, 3, 7]), vec![1, 2, 3, 4, 6, 7]);
        assert_eq!(merge_sorted(&[], &[2]), vec![2]);
        assert_eq!(merge_sorted(&[5], &[]), vec![5]);
    }

    use sleepy_graph::Graph;

    /// A protocol where node 0 relays through ports to verify port-to-id
    /// mapping: it sends its round number only on port 0.
    struct PortSender {
        id: NodeId,
        seen_from_port: Option<Port>,
    }
    impl Protocol for PortSender {
        type Msg = u8;
        type Output = u8;
        fn send(&mut self, _: &NodeCtx, out: &mut Outbox<u8>) {
            if self.id == 1 && out.degree() > 0 {
                out.send(0, 42);
            }
        }
        fn receive(&mut self, _: &NodeCtx, inbox: &[Incoming<u8>]) -> Action {
            if let Some(first) = inbox.first() {
                self.seen_from_port = Some(first.port);
            }
            Action::Terminate
        }
        fn output(&self) -> Option<u8> {
            Some(self.seen_from_port.map(|p| p as u8).unwrap_or(255))
        }
    }

    #[test]
    fn sink_path_reproduces_the_buffered_trace_and_validates() {
        use crate::sink::{RoundSeries, Tee, TraceBuffer};
        use crate::validate::{
            validate_series_against_metrics, validate_series_against_trace,
            validate_trace_against_metrics,
        };
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let cfg = EngineConfig {
            trace: true,
            trace_messages: true,
            loss_probability: 0.25,
            loss_seed: 9,
            ..EngineConfig::default()
        };
        let buffered = run_protocol(&g, &cfg, |id, _| DropProbe { id, heard: 0 }).unwrap();
        let mut buffer = TraceBuffer::new(true);
        let mut series = RoundSeries::new();
        let mut tee = Tee::new(&mut buffer, &mut series);
        let streamed =
            run_protocol_with_sink(&g, &cfg, |id, _| DropProbe { id, heard: 0 }, &mut tee).unwrap();
        assert!(streamed.trace.is_none(), "sink path never materializes a Trace itself");
        assert_eq!(streamed.outputs, buffered.outputs);
        assert_eq!(streamed.metrics, buffered.metrics);
        let trace = buffer.into_trace();
        assert_eq!(Some(&trace), buffered.trace.as_ref());
        assert!(trace.events.iter().any(|e| matches!(e, TraceEvent::Decide { .. })));
        validate_trace_against_metrics(&trace, &streamed.metrics, true).unwrap();
        let rows = series.into_rows();
        validate_series_against_metrics(&rows, &streamed.metrics).unwrap();
        validate_series_against_trace(&rows, &trace).unwrap();
        // The series' awake counts reproduce the engine's accounting.
        assert_eq!(rows.len() as u64, streamed.metrics.active_rounds);
        assert_eq!(
            rows.last().unwrap().cum_awake,
            streamed.metrics.per_node.iter().map(|m| m.awake_rounds).sum::<u64>()
        );
    }

    #[test]
    fn incoming_port_is_receiver_local() {
        // Triangle 0-1-2: node 1's port 0 leads to node 0. Node 0's port to
        // node 1 is 0 (neighbors of 0 are [1, 2]).
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let run = run_protocol(&g, &EngineConfig::default(), |id, _| PortSender {
            id,
            seen_from_port: None,
        })
        .unwrap();
        assert_eq!(run.outputs[0], Some(0));
        assert_eq!(run.outputs[2], Some(255)); // nothing received
    }

    /// The state-machine driver and the legacy loop must agree event for
    /// event, metric for metric. The broad randomized version lives in
    /// `tests/engine_statemachine.rs`; this is the in-crate smoke check.
    #[test]
    fn driver_matches_legacy_loop() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
        let cfg = EngineConfig { loss_probability: 0.2, loss_seed: 7, ..EngineConfig::default() };
        let mut new_buf = TraceBuffer::new(true);
        let new_run =
            run_protocol_with_sink(&g, &cfg, |id, _| DropProbe { id, heard: 0 }, &mut new_buf)
                .unwrap();
        let mut old_buf = TraceBuffer::new(true);
        let old_run = run_protocol_with_sink_legacy(
            &g,
            &cfg,
            |id, _| DropProbe { id, heard: 0 },
            &mut old_buf,
        )
        .unwrap();
        assert_eq!(new_run.outputs, old_run.outputs);
        assert_eq!(new_run.metrics, old_run.metrics);
        assert_eq!(new_buf.into_trace(), old_buf.into_trace());
    }

    /// Error runs must also agree, including the events the sink saw
    /// before the failure.
    #[test]
    fn driver_matches_legacy_loop_on_errors() {
        let g = generators::empty(1).unwrap();
        let mut new_buf = TraceBuffer::new(true);
        let new_err = run_protocol_with_sink(
            &g,
            &EngineConfig::default(),
            |_, _| SleepsIntoPast,
            &mut new_buf,
        )
        .unwrap_err();
        let mut old_buf = TraceBuffer::new(true);
        let old_err = run_protocol_with_sink_legacy(
            &g,
            &EngineConfig::default(),
            |_, _| SleepsIntoPast,
            &mut old_buf,
        )
        .unwrap_err();
        assert_eq!(new_err, old_err);
        assert_eq!(new_buf.into_trace(), old_buf.into_trace());
    }

    /// Both alarm-queue kinds drive byte-identical runs.
    #[test]
    fn alarm_kinds_agree() {
        let g = generators::star(6).unwrap();
        let cfg = EngineConfig::default();
        let mut a = TraceBuffer::new(true);
        let ra = run_protocol_with_alarms(
            &g,
            &cfg,
            |id, _| DropProbe { id, heard: 0 },
            &mut a,
            AlarmKind::Heap,
        )
        .unwrap();
        let mut b = TraceBuffer::new(true);
        let rb = run_protocol_with_alarms(
            &g,
            &cfg,
            |id, _| DropProbe { id, heard: 0 },
            &mut b,
            AlarmKind::Wheel,
        )
        .unwrap();
        assert_eq!(ra.outputs, rb.outputs);
        assert_eq!(ra.metrics, rb.metrics);
        assert_eq!(a.into_trace(), b.into_trace());
    }
}
