//! First-class wake-alarm deadline queues.
//!
//! The sleeping-model engine's idle-round skipping hinges on one data
//! structure: the set of `(wake_round, node)` alarms set by sleeping
//! nodes. This module makes that structure explicit and swappable so it
//! can be microbenchmarked in isolation (`fleet bench-wakes`):
//!
//! * [`HeapAlarms`] — the classic binary min-heap, O(log k) per
//!   operation. This is the structure the pre-state-machine engine used
//!   inline.
//! * [`TimerWheel`] — a bucketed timer wheel: a ring of
//!   [`WHEEL_SLOTS`] per-round buckets for near-future wakes plus a
//!   `BTreeMap` overflow for far-future ones (Algorithm 1's padded
//!   Θ(n³) schedules sleep *very* far ahead). Scheduling into the wheel
//!   window and popping a due bucket are O(1) amortized plus a sort of
//!   the popped bucket.
//!
//! Both implementations expose identical observable behavior —
//! [`AlarmQueue::pop_due`] yields due nodes in ascending id order — so
//! the engine's traces are byte-identical regardless of which queue
//! backs it. `fleet bench-wakes` gates its timing report on exactly
//! that equivalence.
//!
//! # Usage contract
//!
//! Callers must pop rounds in non-decreasing order and never skip past
//! a round that still holds alarms (the engine guarantees this: it
//! processes rounds consecutively while any node is awake and otherwise
//! jumps exactly to [`AlarmQueue::next_deadline`]). Scheduling a wake
//! at or before the current pop frontier is a caller bug, which the
//! engine rules out via [`EngineError::SleepIntoPast`](crate::EngineError).

use crate::Round;
use sleepy_graph::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Number of per-round buckets in the [`TimerWheel`] ring. Wakes within
/// this many rounds of the pop frontier go straight into a bucket;
/// farther ones wait in the sorted overflow until the frontier advances.
pub const WHEEL_SLOTS: usize = 256;

/// Which deadline-queue implementation backs an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlarmKind {
    /// Binary min-heap ([`HeapAlarms`]).
    Heap,
    /// Bucketed timer wheel ([`TimerWheel`]) — the default.
    #[default]
    Wheel,
}

/// The binary-heap deadline queue: `(wake_round, node)` pairs in a
/// min-heap, exactly as the legacy engine loop kept them inline.
#[derive(Debug, Clone, Default)]
pub struct HeapAlarms {
    heap: BinaryHeap<Reverse<(Round, NodeId)>>,
}

impl HeapAlarms {
    /// An empty queue.
    pub fn new() -> Self {
        HeapAlarms::default()
    }

    /// Schedules `node` to wake at `wake`.
    pub fn schedule(&mut self, wake: Round, node: NodeId) {
        self.heap.push(Reverse((wake, node)));
    }

    /// The earliest scheduled wake round, if any alarm is set.
    pub fn next_deadline(&self) -> Option<Round> {
        self.heap.peek().map(|&Reverse((r, _))| r)
    }

    /// Appends every node scheduled to wake at exactly `round` to `out`,
    /// in ascending id order, removing them from the queue.
    pub fn pop_due(&mut self, round: Round, out: &mut Vec<NodeId>) {
        while let Some(&Reverse((r, v))) = self.heap.peek() {
            debug_assert!(r >= round, "missed a wake-up");
            if r != round {
                break;
            }
            self.heap.pop();
            out.push(v);
        }
    }

    /// Number of pending alarms.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no alarm is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The bucketed timer-wheel deadline queue.
///
/// `base` is the pop frontier: every alarm strictly before it has been
/// popped. Rounds `base .. base + WHEEL_SLOTS` live in the ring (bucket
/// of round `r` at slot `(cursor + (r - base)) % WHEEL_SLOTS`); later
/// rounds wait in `overflow`, keyed by round, and are cascaded into the
/// ring as the frontier advances.
#[derive(Debug, Clone)]
pub struct TimerWheel {
    base: Round,
    cursor: usize,
    slots: Vec<Vec<NodeId>>,
    /// Alarms currently inside the ring (invariant: overflow keys are all
    /// `>= base + WHEEL_SLOTS`, so the ring always holds the earliest
    /// deadline when it is non-empty).
    in_wheel: usize,
    overflow: BTreeMap<Round, Vec<NodeId>>,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel {
            base: 0,
            cursor: 0,
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            in_wheel: 0,
            overflow: BTreeMap::new(),
            len: 0,
        }
    }
}

impl TimerWheel {
    /// An empty wheel with the pop frontier at round 0.
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// Schedules `node` to wake at `wake`.
    pub fn schedule(&mut self, wake: Round, node: NodeId) {
        debug_assert!(wake >= self.base, "scheduled a wake behind the pop frontier");
        self.len += 1;
        // Offset comparison, not `wake < base + SLOTS`: the latter
        // overflows (or saturates into excluding `base` itself) for
        // `SleepUntil(u64::MAX)`.
        if wake - self.base < WHEEL_SLOTS as Round {
            let idx = (self.cursor + (wake - self.base) as usize) % WHEEL_SLOTS;
            self.slots[idx].push(node);
            self.in_wheel += 1;
        } else {
            self.overflow.entry(wake).or_default().push(node);
        }
    }

    /// The earliest scheduled wake round, if any alarm is set.
    pub fn next_deadline(&self) -> Option<Round> {
        if self.in_wheel > 0 {
            for off in 0..WHEEL_SLOTS {
                if !self.slots[(self.cursor + off) % WHEEL_SLOTS].is_empty() {
                    return Some(self.base + off as Round);
                }
            }
            unreachable!("in_wheel > 0 but every slot is empty");
        }
        self.overflow.keys().next().copied()
    }

    /// Moves the pop frontier up to `round`, cascading overflow entries
    /// that enter the ring window.
    fn advance_to(&mut self, round: Round) {
        if self.in_wheel == 0 {
            // Ring empty: jump the frontier in O(1); cursor is arbitrary.
            self.base = round;
            self.cursor = 0;
        } else {
            while self.base < round {
                debug_assert!(self.slots[self.cursor].is_empty(), "skipped a due alarm");
                self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
                self.base += 1;
            }
        }
        // Cascade every overflow round now inside the window.
        while let Some((&r, _)) = self.overflow.iter().next() {
            if r - self.base >= WHEEL_SLOTS as Round {
                break;
            }
            let nodes = self.overflow.remove(&r).expect("key just observed");
            let idx = (self.cursor + (r - self.base) as usize) % WHEEL_SLOTS;
            self.in_wheel += nodes.len();
            self.slots[idx].extend(nodes);
        }
    }

    /// Appends every node scheduled to wake at exactly `round` to `out`,
    /// in ascending id order, removing them from the queue and advancing
    /// the pop frontier to `round`.
    pub fn pop_due(&mut self, round: Round, out: &mut Vec<NodeId>) {
        debug_assert!(round >= self.base, "rounds must be popped in non-decreasing order");
        if round > self.base || (self.in_wheel == 0 && !self.overflow.is_empty()) {
            self.advance_to(round);
        }
        let bucket = &mut self.slots[self.cursor];
        if !bucket.is_empty() {
            bucket.sort_unstable();
            self.in_wheel -= bucket.len();
            self.len -= bucket.len();
            out.append(bucket);
        }
    }

    /// Number of pending alarms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no alarm is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A deadline queue of either kind, chosen at engine construction.
#[derive(Debug, Clone)]
pub enum AlarmQueue {
    /// Binary-heap backed.
    Heap(HeapAlarms),
    /// Timer-wheel backed.
    Wheel(TimerWheel),
}

impl AlarmQueue {
    /// An empty queue of the given kind.
    pub fn new(kind: AlarmKind) -> Self {
        match kind {
            AlarmKind::Heap => AlarmQueue::Heap(HeapAlarms::new()),
            AlarmKind::Wheel => AlarmQueue::Wheel(TimerWheel::new()),
        }
    }

    /// Schedules `node` to wake at `wake`.
    pub fn schedule(&mut self, wake: Round, node: NodeId) {
        match self {
            AlarmQueue::Heap(q) => q.schedule(wake, node),
            AlarmQueue::Wheel(q) => q.schedule(wake, node),
        }
    }

    /// The earliest scheduled wake round, if any alarm is set.
    pub fn next_deadline(&self) -> Option<Round> {
        match self {
            AlarmQueue::Heap(q) => q.next_deadline(),
            AlarmQueue::Wheel(q) => q.next_deadline(),
        }
    }

    /// Appends every node due at exactly `round` to `out`, ascending ids.
    pub fn pop_due(&mut self, round: Round, out: &mut Vec<NodeId>) {
        match self {
            AlarmQueue::Heap(q) => q.pop_due(round, out),
            AlarmQueue::Wheel(q) => q.pop_due(round, out),
        }
    }

    /// Number of pending alarms.
    pub fn len(&self) -> usize {
        match self {
            AlarmQueue::Heap(q) => q.len(),
            AlarmQueue::Wheel(q) => q.len(),
        }
    }

    /// Whether no alarm is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic SplitMix64 stream for test traffic (no ambient
    /// entropy in engine-adjacent tests).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn simple_schedule_and_pop() {
        for kind in [AlarmKind::Heap, AlarmKind::Wheel] {
            let mut q = AlarmQueue::new(kind);
            assert!(q.is_empty());
            assert_eq!(q.next_deadline(), None);
            q.schedule(5, 2);
            q.schedule(3, 7);
            q.schedule(5, 1);
            assert_eq!(q.len(), 3);
            assert_eq!(q.next_deadline(), Some(3));
            let mut out = Vec::new();
            q.pop_due(3, &mut out);
            assert_eq!(out, vec![7]);
            out.clear();
            q.pop_due(4, &mut out);
            assert!(out.is_empty());
            q.pop_due(5, &mut out);
            assert_eq!(out, vec![1, 2], "equal-round pops are ascending by id");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn wheel_handles_far_future_and_big_jumps() {
        let mut q = TimerWheel::new();
        q.schedule(1_000_000, 3);
        q.schedule(1_000_000, 1);
        q.schedule(2, 0);
        assert_eq!(q.next_deadline(), Some(2));
        let mut out = Vec::new();
        q.pop_due(2, &mut out);
        assert_eq!(out, vec![0]);
        assert_eq!(q.next_deadline(), Some(1_000_000));
        out.clear();
        // Jump straight to the far deadline (idle-round skipping).
        q.pop_due(1_000_000, &mut out);
        assert_eq!(out, vec![1, 3]);
        assert!(q.is_empty());
        // Reschedule near the new frontier.
        q.schedule(1_000_001, 9);
        assert_eq!(q.next_deadline(), Some(1_000_001));
        out.clear();
        q.pop_due(1_000_001, &mut out);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn wheel_overflow_cascades_across_window_boundary() {
        let mut q = TimerWheel::new();
        // One alarm just inside the window, one just outside.
        let inside = (WHEEL_SLOTS - 1) as Round;
        let outside = WHEEL_SLOTS as Round + 3;
        q.schedule(inside, 5);
        q.schedule(outside, 6);
        let mut out = Vec::new();
        for r in 0..=inside {
            q.pop_due(r, &mut out);
        }
        assert_eq!(out, vec![5]);
        assert_eq!(q.next_deadline(), Some(outside));
        out.clear();
        q.pop_due(outside, &mut out);
        assert_eq!(out, vec![6]);
        assert!(q.is_empty());
    }

    #[test]
    fn extreme_wake_round_does_not_overflow() {
        let mut q = TimerWheel::new();
        q.schedule(Round::MAX, 1);
        assert_eq!(q.next_deadline(), Some(Round::MAX));
        let mut out = Vec::new();
        q.pop_due(Round::MAX, &mut out);
        assert_eq!(out, vec![1]);
    }

    /// The heap is the oracle: under engine-like random traffic both
    /// queues report identical deadlines and pop identical sequences.
    #[test]
    fn wheel_matches_heap_under_random_traffic() {
        for seed in 0..8u64 {
            let mut rng = 0x5EED_0000 + seed;
            let mut heap = AlarmQueue::new(AlarmKind::Heap);
            let mut wheel = AlarmQueue::new(AlarmKind::Wheel);
            let mut round: Round = 0;
            let mut pending = 0usize;
            let mut next_node: NodeId = 0;
            for _ in 0..600 {
                // Schedule a burst of alarms strictly after `round`.
                let burst = (splitmix(&mut rng) % 4) as usize;
                for _ in 0..burst {
                    let r = splitmix(&mut rng);
                    // Mix of near (ring) and far (overflow) wakes.
                    let offset = if r.is_multiple_of(5) { 1 + r % 10_000 } else { 1 + r % 40 };
                    let wake = round + offset;
                    heap.schedule(wake, next_node);
                    wheel.schedule(wake, next_node);
                    next_node += 1;
                    pending += 1;
                }
                assert_eq!(heap.next_deadline(), wheel.next_deadline());
                assert_eq!(heap.len(), wheel.len());
                if pending == 0 {
                    round += 1;
                    continue;
                }
                // Advance: half the time to the next deadline (idle jump),
                // otherwise one round at a time.
                round = if splitmix(&mut rng).is_multiple_of(2) {
                    heap.next_deadline().expect("pending > 0")
                } else {
                    round + 1
                };
                let mut a = Vec::new();
                let mut b = Vec::new();
                heap.pop_due(round, &mut a);
                wheel.pop_due(round, &mut b);
                assert_eq!(a, b, "divergent pops at round {round} (seed {seed})");
                pending -= a.len();
            }
        }
    }
}
