//! The sans-io engine core: a state machine that consumes
//! [`EngineInput`]s and emits [`EngineOutput`]s, with no protocol code,
//! no I/O, and no clocks inside.
//!
//! [`SleepyEngine`] owns everything the round loop used to own inline —
//! node statuses, the wake-alarm [`AlarmQueue`], per-node metrics, the
//! loss process, CONGEST budget enforcement, and trace-event generation
//! — while the *protocol instances* stay outside, behind a driver (see
//! [`run_protocol_with_sink`](crate::run_protocol_with_sink)). The
//! driver answers [`EngineOutput::PollSend`] / [`EngineOutput::PollReceive`]
//! prompts by running one node's callback and feeding the result back
//! as an [`EngineInput`].
//!
//! Because inputs carry only ports, bit sizes, and [`Action`]s — never
//! message payloads — every input sequence is serializable: the
//! [`tape`](crate::tape) module records them as versioned JSONL tapes
//! that replay through this state machine *without any protocol code*,
//! reproducing the exact output stream byte-for-byte.
//!
//! The output stream preserves the engine's documented deterministic
//! order (see [`TraceSink`](crate::TraceSink)): per active round, one
//! [`EngineOutput::RoundBegin`], `Wake` events ascending by id, the send
//! phase's message events sender-major, then the receive phase's
//! `Decide`/`Sleep`/`Terminate` events ascending by id. Exactly one
//! poll prompt is pending at any time, which is what pins the
//! interleaving to the legacy loop's byte-identical trace order.

use crate::alarm::{AlarmKind, AlarmQueue};
use crate::engine::{merge_sorted, EngineConfig};
use crate::error::EngineError;
use crate::fault::FaultModel;
use crate::metrics::{NodeMetrics, RunMetrics};
use crate::protocol::Action;
use crate::trace::TraceEvent;
use crate::Round;
use serde::{Serialize, Value};
use sleepy_graph::{Graph, NodeId, Port};
use std::collections::VecDeque;

/// Node lifecycle inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Awake,
    Asleep,
    Done,
}

/// One outgoing message as the state machine sees it: the sender-local
/// port and the payload size in bits. The payload itself never enters
/// the state machine — the driver keeps it and pairs it back up via
/// [`EngineOutput::Deliver`]'s index — which is what makes inputs
/// serializable as tapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutMsg {
    /// Sender-local out-port (`0..degree`).
    pub port: Port,
    /// Payload size in bits (drives metrics and the CONGEST budget).
    pub bits: usize,
}

/// One unit of input to the state machine.
///
/// The driver feeds exactly one input per poll prompt: a [`Sends`]
/// answering [`EngineOutput::PollSend`], a [`Step`] answering
/// [`EngineOutput::PollReceive`].
///
/// [`Sends`]: EngineInput::Sends
/// [`Step`]: EngineInput::Step
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineInput {
    /// The complete send phase of one node this round, in emission order.
    Sends {
        /// The sending node.
        node: NodeId,
        /// Its outgoing messages, in the order they were queued.
        msgs: Vec<OutMsg>,
    },
    /// The receive-phase result of one node this round.
    Step {
        /// The node.
        node: NodeId,
        /// What the node chose to do.
        action: Action,
        /// Whether the node's output is `Some` after this receive (drives
        /// `decide_round` accounting and the terminate-without-output
        /// check without the state machine ever calling protocol code).
        output_some: bool,
    },
}

/// One unit of output from the state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineOutput {
    /// A new active round begins with `awake` nodes awake.
    RoundBegin {
        /// The round number.
        round: Round,
        /// Awake node count (carried over plus newly woken).
        awake: u64,
    },
    /// A trace event, in the engine's deterministic order. Message-level
    /// events appear only when the engine was built with `messages`.
    Event(TraceEvent),
    /// The driver must run `node`'s send callback and feed
    /// [`EngineInput::Sends`].
    PollSend {
        /// The node to poll.
        node: NodeId,
        /// The current round (for the node's context).
        round: Round,
    },
    /// Deliver the sender's `index`-th message of the input just consumed
    /// into `to`'s inbox under receiver-local port `port`.
    Deliver {
        /// The receiving node.
        to: NodeId,
        /// Receiver-local in-port (the port leading back to the sender).
        port: Port,
        /// The sending node.
        from: NodeId,
        /// Index into the sender's [`EngineInput::Sends`] message list.
        index: usize,
    },
    /// The driver must run `node`'s receive callback (its inbox now holds
    /// every message delivered this round) and feed [`EngineInput::Step`].
    PollReceive {
        /// The node to poll.
        node: NodeId,
        /// The current round (for the node's context).
        round: Round,
    },
    /// Every node has terminated; no further input is expected.
    Finished,
}

impl Serialize for OutMsg {
    fn to_value(&self) -> Value {
        Value::Array(vec![Value::UInt(self.port as u64), Value::UInt(self.bits as u64)])
    }
}

impl Serialize for EngineInput {
    fn to_value(&self) -> Value {
        match self {
            EngineInput::Sends { node, msgs } => Value::Object(vec![
                ("i".to_string(), Value::String("sends".to_string())),
                ("node".to_string(), Value::UInt(*node as u64)),
                ("msgs".to_string(), Value::Array(msgs.iter().map(Serialize::to_value).collect())),
            ]),
            EngineInput::Step { node, action, output_some } => {
                let act = match action {
                    Action::Continue => Value::String("c".to_string()),
                    Action::SleepUntil(r) => {
                        Value::Object(vec![("s".to_string(), Value::UInt(*r))])
                    }
                    Action::Terminate => Value::String("t".to_string()),
                };
                Value::Object(vec![
                    ("i".to_string(), Value::String("step".to_string())),
                    ("node".to_string(), Value::UInt(*node as u64)),
                    ("act".to_string(), act),
                    ("out".to_string(), Value::Bool(*output_some)),
                ])
            }
        }
    }
}

impl Serialize for EngineOutput {
    fn to_value(&self) -> Value {
        match self {
            EngineOutput::RoundBegin { round, awake } => Value::Object(vec![
                ("o".to_string(), Value::String("round".to_string())),
                ("round".to_string(), Value::UInt(*round)),
                ("awake".to_string(), Value::UInt(*awake)),
            ]),
            EngineOutput::Event(e) => Value::Object(vec![
                ("o".to_string(), Value::String("event".to_string())),
                ("e".to_string(), e.to_value()),
            ]),
            EngineOutput::PollSend { node, round } => Value::Object(vec![
                ("o".to_string(), Value::String("send".to_string())),
                ("node".to_string(), Value::UInt(*node as u64)),
                ("round".to_string(), Value::UInt(*round)),
            ]),
            EngineOutput::Deliver { to, port, from, index } => Value::Object(vec![
                ("o".to_string(), Value::String("deliver".to_string())),
                ("to".to_string(), Value::UInt(*to as u64)),
                ("port".to_string(), Value::UInt(*port as u64)),
                ("from".to_string(), Value::UInt(*from as u64)),
                ("index".to_string(), Value::UInt(*index as u64)),
            ]),
            EngineOutput::PollReceive { node, round } => Value::Object(vec![
                ("o".to_string(), Value::String("recv".to_string())),
                ("node".to_string(), Value::UInt(*node as u64)),
                ("round".to_string(), Value::UInt(*round)),
            ]),
            EngineOutput::Finished => {
                Value::Object(vec![("o".to_string(), Value::String("finished".to_string()))])
            }
        }
    }
}

/// Where the state machine is within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for `Sends` from `active[idx]`.
    Send { idx: usize },
    /// Waiting for `Step` from `active[idx]`.
    Receive { idx: usize },
    /// Run complete ([`EngineOutput::Finished`] emitted).
    Done,
    /// A prior input raised an error; no further input is accepted.
    Failed,
}

/// The sans-io sleeping-model engine core. The module-level docs
/// describe the driving protocol.
#[derive(Debug)]
pub struct SleepyEngine<'g> {
    graph: &'g Graph,
    max_rounds: Round,
    congest_bits: Option<usize>,
    fault: Option<Box<dyn FaultModel>>,
    messages: bool,
    status: Vec<Status>,
    metrics: Vec<NodeMetrics>,
    /// Nodes awake in the round being processed, ascending ids.
    active: Vec<NodeId>,
    /// Nodes that chose `Continue` and carry over to the next round.
    carry: Vec<NodeId>,
    /// Scratch for the nodes woken at the start of a round.
    woken: Vec<NodeId>,
    alarms: AlarmQueue,
    outputs: VecDeque<EngineOutput>,
    phase: Phase,
    remaining: usize,
    round: Round,
    active_rounds: u64,
    max_finish: Round,
}

impl<'g> SleepyEngine<'g> {
    /// A fresh engine over `graph`, using the default deadline queue
    /// ([`AlarmKind::Wheel`]). `messages` controls whether message-level
    /// [`EngineOutput::Event`]s are generated (drivers pass their sink's
    /// [`wants_messages`](crate::TraceSink::wants_messages)); delivery
    /// outputs are always generated.
    ///
    /// `config.trace` / `config.trace_messages` are ignored here — they
    /// configure [`run_protocol`](crate::run_protocol)'s implicit buffer
    /// sink, not the core.
    pub fn new(graph: &'g Graph, config: &EngineConfig, messages: bool) -> Self {
        SleepyEngine::with_alarms(graph, config, messages, AlarmKind::default())
    }

    /// [`SleepyEngine::new`] with an explicit deadline-queue choice. Both
    /// kinds produce byte-identical output streams; the choice only
    /// matters for performance (see `fleet bench-wakes`).
    pub fn with_alarms(
        graph: &'g Graph,
        config: &EngineConfig,
        messages: bool,
        alarms: AlarmKind,
    ) -> Self {
        let n = graph.n();
        let mut sm = SleepyEngine {
            graph,
            max_rounds: config.max_rounds,
            congest_bits: config.congest_bits,
            fault: config.effective_fault().build(),
            messages,
            status: vec![Status::Awake; n],
            metrics: vec![NodeMetrics::default(); n],
            active: (0..n as NodeId).collect(),
            carry: Vec::with_capacity(n),
            woken: Vec::new(),
            alarms: AlarmQueue::new(alarms),
            outputs: VecDeque::new(),
            phase: Phase::Done,
            remaining: n,
            round: 0,
            active_rounds: 0,
            max_finish: 0,
        };
        if n == 0 {
            sm.outputs.push_back(EngineOutput::Finished);
        } else {
            sm.begin_round().expect("round 0 is always within the cap");
        }
        sm
    }

    /// Starts the round at `self.round` (or jumps to the next deadline if
    /// no node carried over): wakes due sleepers, emits `RoundBegin`,
    /// `Wake` events, and the first `PollSend` prompt.
    fn begin_round(&mut self) -> Result<(), EngineError> {
        if self.active.is_empty() {
            match self.alarms.next_deadline() {
                Some(r) => self.round = r,
                None => {
                    return Err(EngineError::Deadlock {
                        round: self.round,
                        unfinished: self.remaining,
                    })
                }
            }
        }
        if self.round > self.max_rounds {
            return Err(EngineError::MaxRoundsExceeded {
                max_rounds: self.max_rounds,
                unfinished: self.remaining,
            });
        }
        self.woken.clear();
        self.alarms.pop_due(self.round, &mut self.woken);
        for &v in &self.woken {
            self.status[v as usize] = Status::Awake;
        }
        if !self.woken.is_empty() {
            self.active = merge_sorted(&self.active, &self.woken);
        }
        debug_assert!(self.active.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(!self.active.is_empty(), "a begun round has at least one awake node");
        self.active_rounds += 1;
        self.outputs.push_back(EngineOutput::RoundBegin {
            round: self.round,
            awake: self.active.len() as u64,
        });
        for &v in &self.woken {
            self.outputs
                .push_back(EngineOutput::Event(TraceEvent::Wake { round: self.round, node: v }));
        }
        self.carry.clear();
        self.phase = Phase::Send { idx: 0 };
        self.outputs.push_back(EngineOutput::PollSend { node: self.active[0], round: self.round });
        Ok(())
    }

    /// Feeds one input. On error the state machine refuses all further
    /// input; outputs already queued (events preceding the failure, as a
    /// sink on the legacy loop would have observed them) remain pollable.
    ///
    /// # Errors
    ///
    /// The protocol-bug and cap errors of
    /// [`run_protocol`](crate::run_protocol), plus
    /// [`EngineError::UnexpectedInput`] if `input` does not answer the
    /// pending poll prompt (a driver bug or a corrupted tape).
    pub fn handle_input(&mut self, input: EngineInput) -> Result<(), EngineError> {
        let r = match input {
            EngineInput::Sends { node, msgs } => self.on_sends(node, &msgs),
            EngineInput::Step { node, action, output_some } => {
                self.on_step(node, action, output_some)
            }
        };
        if r.is_err() {
            self.phase = Phase::Failed;
        }
        r
    }

    fn expect_node(&self, idx: usize, node: NodeId, what: &str) -> Result<(), EngineError> {
        let expected = self.active[idx];
        if node != expected {
            return Err(EngineError::UnexpectedInput {
                round: self.round,
                detail: format!("{what} from node {node}, expected node {expected}"),
            });
        }
        Ok(())
    }

    fn on_sends(&mut self, node: NodeId, msgs: &[OutMsg]) -> Result<(), EngineError> {
        let Phase::Send { idx } = self.phase else {
            return Err(EngineError::UnexpectedInput {
                round: self.round,
                detail: format!("Sends from node {node} outside the send phase"),
            });
        };
        self.expect_node(idx, node, "Sends")?;
        let round = self.round;
        let degree = self.graph.degree(node);
        for (index, m) in msgs.iter().enumerate() {
            if m.port >= degree {
                return Err(EngineError::InvalidPort { node, port: m.port, degree });
            }
            if let Some(budget) = self.congest_bits {
                if m.bits > budget {
                    return Err(EngineError::MessageTooLarge { node, bits: m.bits, budget });
                }
            }
            let vm = &mut self.metrics[node as usize];
            vm.messages_sent += 1;
            vm.bits_sent += m.bits as u64;
            let dst = self.graph.endpoint(node, m.port);
            if let Some(model) = self.fault.as_mut() {
                if model.message_lost(round, node, dst) {
                    self.metrics[dst as usize].messages_lost += 1;
                    if self.messages {
                        self.outputs.push_back(EngineOutput::Event(TraceEvent::MessageLost {
                            round,
                            from: node,
                            to: dst,
                        }));
                    }
                    continue;
                }
            }
            let delivered = self.status[dst as usize] == Status::Awake;
            if self.messages {
                self.outputs.push_back(EngineOutput::Event(TraceEvent::Message {
                    round,
                    from: node,
                    to: dst,
                    dropped: !delivered,
                }));
            }
            if delivered {
                let port = self
                    .graph
                    .port_to(dst, node)
                    .expect("endpoint/port_to must be mutually consistent");
                self.outputs.push_back(EngineOutput::Deliver { to: dst, port, from: node, index });
                self.metrics[dst as usize].messages_received += 1;
            } else {
                self.metrics[dst as usize].messages_dropped += 1;
            }
        }
        let next = idx + 1;
        if next < self.active.len() {
            self.phase = Phase::Send { idx: next };
            self.outputs.push_back(EngineOutput::PollSend { node: self.active[next], round });
        } else {
            self.phase = Phase::Receive { idx: 0 };
            self.outputs.push_back(EngineOutput::PollReceive { node: self.active[0], round });
        }
        Ok(())
    }

    fn on_step(
        &mut self,
        node: NodeId,
        action: Action,
        output_some: bool,
    ) -> Result<(), EngineError> {
        let Phase::Receive { idx } = self.phase else {
            return Err(EngineError::UnexpectedInput {
                round: self.round,
                detail: format!("Step from node {node} outside the receive phase"),
            });
        };
        self.expect_node(idx, node, "Step")?;
        let round = self.round;
        {
            let vm = &mut self.metrics[node as usize];
            vm.awake_rounds += 1;
            if vm.decide_round.is_none() && output_some {
                vm.decide_round = Some(round);
                self.outputs.push_back(EngineOutput::Event(TraceEvent::Decide { round, node }));
            }
        }
        match action {
            Action::Continue => self.carry.push(node),
            Action::SleepUntil(wake_at) => {
                if wake_at <= round {
                    return Err(EngineError::SleepIntoPast { node, round, wake_at });
                }
                self.status[node as usize] = Status::Asleep;
                self.alarms.schedule(wake_at, node);
                self.outputs.push_back(EngineOutput::Event(TraceEvent::Sleep {
                    round,
                    node,
                    until: wake_at,
                }));
            }
            Action::Terminate => {
                if !output_some {
                    return Err(EngineError::TerminatedWithoutOutput { node, round });
                }
                self.status[node as usize] = Status::Done;
                self.metrics[node as usize].finish_round = Some(round);
                self.max_finish = self.max_finish.max(round);
                self.remaining -= 1;
                self.outputs.push_back(EngineOutput::Event(TraceEvent::Terminate { round, node }));
            }
        }
        let next = idx + 1;
        if next < self.active.len() {
            self.phase = Phase::Receive { idx: next };
            self.outputs.push_back(EngineOutput::PollReceive { node: self.active[next], round });
        } else {
            std::mem::swap(&mut self.active, &mut self.carry);
            self.round += 1;
            if self.remaining == 0 {
                self.phase = Phase::Done;
                self.outputs.push_back(EngineOutput::Finished);
            } else {
                self.begin_round()?;
            }
        }
        Ok(())
    }

    /// The next queued output, if any. Between two inputs the queue drains
    /// completely; a driver that polls until `None` before feeding the
    /// pending prompt observes the canonical stream order.
    pub fn poll_output(&mut self) -> Option<EngineOutput> {
        self.outputs.pop_front()
    }

    /// The earliest pending wake alarm, if any — the round the engine
    /// will jump to if every awake node goes to sleep.
    pub fn next_deadline(&self) -> Option<Round> {
        self.alarms.next_deadline()
    }

    /// The round currently being processed (or about to begin).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Number of nodes that have not terminated yet.
    pub fn unfinished(&self) -> usize {
        self.remaining
    }

    /// Whether the run completed (every node terminated and
    /// [`EngineOutput::Finished`] was emitted).
    pub fn is_finished(&self) -> bool {
        self.phase == Phase::Done && self.remaining == 0
    }

    /// Consumes the engine, yielding the run's metrics. Meaningful only
    /// once [`SleepyEngine::is_finished`]; callable anytime for
    /// diagnostics.
    pub fn finish(self) -> RunMetrics {
        let total_rounds = if self.metrics.is_empty() { 0 } else { self.max_finish + 1 };
        RunMetrics { per_node: self.metrics, total_rounds, active_rounds: self.active_rounds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sm: &mut SleepyEngine<'_>) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        while let Some(o) = sm.poll_output() {
            out.push(o);
        }
        out
    }

    #[test]
    fn empty_graph_finishes_immediately() {
        let g = Graph::from_edges(0, []).unwrap();
        let mut sm = SleepyEngine::new(&g, &EngineConfig::default(), false);
        assert_eq!(drain(&mut sm), vec![EngineOutput::Finished]);
        assert!(sm.is_finished());
        let m = sm.finish();
        assert_eq!(m.total_rounds, 0);
        assert_eq!(m.active_rounds, 0);
    }

    #[test]
    fn two_node_round_trip_with_delivery() {
        // Path 0-1; node 0 sends one 8-bit message to node 1, both
        // terminate in round 0.
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut sm = SleepyEngine::new(&g, &EngineConfig::default(), true);
        assert_eq!(
            drain(&mut sm),
            vec![
                EngineOutput::RoundBegin { round: 0, awake: 2 },
                EngineOutput::PollSend { node: 0, round: 0 },
            ]
        );
        sm.handle_input(EngineInput::Sends { node: 0, msgs: vec![OutMsg { port: 0, bits: 8 }] })
            .unwrap();
        assert_eq!(
            drain(&mut sm),
            vec![
                EngineOutput::Event(TraceEvent::Message {
                    round: 0,
                    from: 0,
                    to: 1,
                    dropped: false
                }),
                EngineOutput::Deliver { to: 1, port: 0, from: 0, index: 0 },
                EngineOutput::PollSend { node: 1, round: 0 },
            ]
        );
        sm.handle_input(EngineInput::Sends { node: 1, msgs: vec![] }).unwrap();
        assert_eq!(drain(&mut sm), vec![EngineOutput::PollReceive { node: 0, round: 0 }]);
        sm.handle_input(EngineInput::Step {
            node: 0,
            action: Action::Terminate,
            output_some: true,
        })
        .unwrap();
        assert_eq!(
            drain(&mut sm),
            vec![
                EngineOutput::Event(TraceEvent::Decide { round: 0, node: 0 }),
                EngineOutput::Event(TraceEvent::Terminate { round: 0, node: 0 }),
                EngineOutput::PollReceive { node: 1, round: 0 },
            ]
        );
        sm.handle_input(EngineInput::Step {
            node: 1,
            action: Action::Terminate,
            output_some: true,
        })
        .unwrap();
        assert_eq!(
            drain(&mut sm),
            vec![
                EngineOutput::Event(TraceEvent::Decide { round: 0, node: 1 }),
                EngineOutput::Event(TraceEvent::Terminate { round: 0, node: 1 }),
                EngineOutput::Finished,
            ]
        );
        assert!(sm.is_finished());
        let m = sm.finish();
        assert_eq!(m.total_rounds, 1);
        assert_eq!(m.per_node[0].messages_sent, 1);
        assert_eq!(m.per_node[1].messages_received, 1);
    }

    #[test]
    fn unexpected_inputs_are_rejected() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut sm = SleepyEngine::new(&g, &EngineConfig::default(), false);
        drain(&mut sm);
        // A Step during the send phase.
        let err = sm
            .handle_input(EngineInput::Step {
                node: 0,
                action: Action::Continue,
                output_some: false,
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::UnexpectedInput { .. }));
        // After a failure, all input is refused.
        let err = sm.handle_input(EngineInput::Sends { node: 0, msgs: vec![] }).unwrap_err();
        assert!(matches!(err, EngineError::UnexpectedInput { .. }));
    }

    #[test]
    fn wrong_node_is_rejected() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut sm = SleepyEngine::new(&g, &EngineConfig::default(), false);
        drain(&mut sm);
        let err = sm.handle_input(EngineInput::Sends { node: 1, msgs: vec![] }).unwrap_err();
        match err {
            EngineError::UnexpectedInput { round, detail } => {
                assert_eq!(round, 0);
                assert!(detail.contains("expected node 0"), "{detail}");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn deadline_tracks_sleepers_and_idle_jump() {
        // Two isolated nodes: node 1 sleeps at round 0, node 0 stays awake
        // one more round so the pending deadline is observable, then
        // sleeps too, triggering the idle jump straight to round 50.
        let g = Graph::from_edges(2, []).unwrap();
        let mut sm = SleepyEngine::new(&g, &EngineConfig::default(), false);
        drain(&mut sm);
        assert_eq!(sm.next_deadline(), None);
        for node in [0, 1] {
            sm.handle_input(EngineInput::Sends { node, msgs: vec![] }).unwrap();
            drain(&mut sm);
        }
        sm.handle_input(EngineInput::Step {
            node: 0,
            action: Action::Continue,
            output_some: false,
        })
        .unwrap();
        drain(&mut sm);
        sm.handle_input(EngineInput::Step {
            node: 1,
            action: Action::SleepUntil(50),
            output_some: false,
        })
        .unwrap();
        // Round 1 began with node 0 still awake; node 1's alarm is pending.
        assert_eq!(sm.round(), 1);
        assert_eq!(sm.next_deadline(), Some(50));
        let outs = drain(&mut sm);
        assert!(outs.contains(&EngineOutput::Event(TraceEvent::Sleep {
            round: 0,
            node: 1,
            until: 50
        })));
        assert!(outs.contains(&EngineOutput::RoundBegin { round: 1, awake: 1 }));
        // Node 0 now sleeps until 50 as well: no one is awake, so
        // handle_input jumps the engine straight to round 50 and wakes both.
        sm.handle_input(EngineInput::Sends { node: 0, msgs: vec![] }).unwrap();
        drain(&mut sm);
        sm.handle_input(EngineInput::Step {
            node: 0,
            action: Action::SleepUntil(50),
            output_some: false,
        })
        .unwrap();
        let outs = drain(&mut sm);
        assert!(outs.contains(&EngineOutput::RoundBegin { round: 50, awake: 2 }));
        assert!(outs.contains(&EngineOutput::Event(TraceEvent::Wake { round: 50, node: 0 })));
        assert!(outs.contains(&EngineOutput::Event(TraceEvent::Wake { round: 50, node: 1 })));
        assert_eq!(sm.round(), 50);
        assert_eq!(sm.next_deadline(), None);
    }

    #[test]
    fn deadlock_detected_when_all_sleep_forever() {
        // Single node terminates nothing and no alarms remain -> the
        // round-ending Step triggers Deadlock... which cannot happen for
        // Continue (node stays active). Exercise via max_rounds instead,
        // and deadlock via an impossible state is covered in engine tests.
        let g = Graph::from_edges(1, []).unwrap();
        let cfg = EngineConfig { max_rounds: 3, ..EngineConfig::default() };
        let mut sm = SleepyEngine::new(&g, &cfg, false);
        drain(&mut sm);
        sm.handle_input(EngineInput::Sends { node: 0, msgs: vec![] }).unwrap();
        drain(&mut sm);
        let err = sm
            .handle_input(EngineInput::Step {
                node: 0,
                action: Action::SleepUntil(9),
                output_some: false,
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::MaxRoundsExceeded { max_rounds: 3, unfinished: 1 }));
        // Outputs queued before the failure (the Sleep event) stay pollable.
        let outs = drain(&mut sm);
        assert!(outs.contains(&EngineOutput::Event(TraceEvent::Sleep {
            round: 0,
            node: 0,
            until: 9
        })));
    }

    #[test]
    fn serialization_is_compact_and_stable() {
        let sends = EngineInput::Sends {
            node: 3,
            msgs: vec![OutMsg { port: 0, bits: 32 }, OutMsg { port: 2, bits: 8 }],
        };
        assert_eq!(
            serde::value::to_compact_string(&sends.to_value()),
            r#"{"i":"sends","node":3,"msgs":[[0,32],[2,8]]}"#
        );
        let step = EngineInput::Step { node: 1, action: Action::SleepUntil(77), output_some: true };
        assert_eq!(
            serde::value::to_compact_string(&step.to_value()),
            r#"{"i":"step","node":1,"act":{"s":77},"out":true}"#
        );
        let out = EngineOutput::Deliver { to: 4, port: 1, from: 2, index: 0 };
        assert_eq!(
            serde::value::to_compact_string(&out.to_value()),
            r#"{"o":"deliver","to":4,"port":1,"from":2,"index":0}"#
        );
    }
}
