//! # sleepy-harness
//!
//! The experiment harness that regenerates **every table and figure** of
//! *"Sleeping is Efficient"* (PODC 2020), plus empirical validation of its
//! lemmas and theorems. Each module is one experiment; each has a CLI
//! binary (`table1`, `figure1`, `figure2`, `lemmas`, `theorems`,
//! `corollary1`, `energy`, `all-experiments`).
//!
//! | Experiment | Paper artifact | Module |
//! |-----------|----------------|--------|
//! | T1  | Table 1 (4 complexity measures × algorithms) | [`table1`] |
//! | F1  | Figure 1 (recursion-tree timing labels)      | [`figure1`] |
//! | F2  | Figure 2 (truncated recursion tree, level occupancy) | [`figure2`] |
//! | L2/L3/L5/L7 | Lemmas 2, 3 (Pruning), 5, 7          | [`lemmas`] |
//! | TH1/TH2 | Theorems 1 and 2 scaling                  | [`theorems`] |
//! | C1/WHP | Corollary 1 equivalence, whp correctness   | [`corollary1`] |
//! | EN  | §1.1 energy motivation (sensor networks)      | [`energy`] |
//! | AB  | ablations of fixed design knobs (greedy c, truncation depth) | [`ablation`] |
//! | CO  | §1.5 contrast: (Δ+1)-coloring is O(1) node-averaged in the traditional model | [`coloring`] |
//! | RB  | robustness under injected message loss (beyond the paper) | [`robustness`] |
//! | CH  | MIS repair vs recompute under graph churn (beyond the paper) | [`churn`] |
//! | AW  | awake fraction per round via the protocol flight recorder | [`awake_timeline`] |
//!
//! All experiments are deterministic given their configured base seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod awake_timeline;
pub mod churn;
pub mod coloring;
pub mod corollary1;
pub mod energy;
mod error;
pub mod figure1;
pub mod figure2;
pub mod lemmas;
mod measure;
pub mod output;
pub mod robustness;
pub mod table1;
pub mod theorems;
mod workloads;

pub use error::HarnessError;
pub use measure::{
    measure_once, measure_trials, AggregateMeasurement, AlgoKind, ComplexityReport, Execution,
    ALL_ALGOS, SLEEPING_ALGOS,
};
pub use workloads::{standard_families, Workload};
