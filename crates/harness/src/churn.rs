//! **Experiment CH — MIS repair under churn (beyond the paper).**
//!
//! The paper proves its O(1) node-averaged awake bound on static graphs,
//! but the sleeping model's natural habitat is networks that change —
//! the follow-up literature (Ghaffari–Portmann 2023; the dynamic
//! sleeping-model line of arXiv 2112.05344) studies exactly this. This
//! experiment opens that axis empirically: each trial's graph suffers a
//! seeded churn batch (edge flips, node departures/arrivals) between
//! phases, and the MIS is either **recomputed** from scratch or
//! **repaired** on the restricted neighborhood the churn actually
//! damaged (everyone else sleeps through the phase).
//!
//! The quantity of interest is node-averaged awake complexity *per churn
//! event*: recompute pays the full O(1)-per-node price every phase,
//! while repair pays it only on the damaged scope — so its whole-graph
//! average collapses toward zero as the churn fraction shrinks.

use crate::error::HarnessError;
use serde::{Deserialize, Serialize};
use sleepy_fleet::{
    run_dynamic_plan, DynamicFleetReport, DynamicPlan, Execution, FleetConfig, PhaseJobReport,
    ALL_STRATEGIES, SLEEPING_ALGOS,
};
use sleepy_graph::{ChurnModel, ChurnSpec, GraphFamily};
use sleepy_stats::TextTable;

/// Configuration of the churn experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Graph families to churn.
    pub families: Vec<GraphFamily>,
    /// Node count of the initial instances.
    pub n: usize,
    /// Phases per trial (phase 0 is the initial full run).
    pub phases: usize,
    /// Fraction of edges deleted and inserted per phase.
    pub edge_churn: f64,
    /// Fraction of nodes departing and arriving per phase.
    pub node_churn: f64,
    /// Attachment edges per arriving node.
    pub arrival_degree: usize,
    /// Trials per (family, algorithm, strategy) job.
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
    /// How churn targets are drawn (uniform, or adversarially aimed at
    /// current MIS members).
    pub model: ChurnModel,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            families: sleepy_fleet::standard_families(),
            n: 1024,
            phases: 6,
            edge_churn: 0.05,
            node_churn: 0.02,
            arrival_degree: 3,
            trials: 10,
            base_seed: 0xC1124,
            model: ChurnModel::Uniform,
        }
    }
}

/// Results of experiment CH.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnReport {
    /// The configuration used.
    pub config: ChurnConfig,
    /// The underlying fleet report (per job, per phase).
    pub fleet: DynamicFleetReport,
}

impl ChurnConfig {
    fn churn_spec(&self) -> ChurnSpec {
        ChurnSpec {
            edge_delete_frac: self.edge_churn,
            edge_insert_frac: self.edge_churn,
            node_delete_frac: self.node_churn,
            node_insert_frac: self.node_churn,
            arrival_degree: self.arrival_degree,
            model: self.model,
        }
    }
}

/// Runs experiment CH on the fleet.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_churn(config: &ChurnConfig) -> Result<ChurnReport, HarnessError> {
    let plan = DynamicPlan::sweep(
        &config.families,
        &[config.n],
        &SLEEPING_ALGOS,
        &ALL_STRATEGIES,
        config.phases,
        config.churn_spec(),
        config.trials,
        config.base_seed,
        Execution::Auto,
    );
    let out = run_dynamic_plan(&plan, &FleetConfig::default())?;
    Ok(ChurnReport { config: config.clone(), fleet: out.report(&plan) })
}

/// Mean of `metric` over the churn phases (1..) of a job.
fn churn_phase_mean(phases: &[PhaseJobReport], metric: impl Fn(&PhaseJobReport) -> f64) -> f64 {
    if phases.len() <= 1 {
        return 0.0;
    }
    phases[1..].iter().map(metric).sum::<f64>() / (phases.len() - 1) as f64
}

impl ChurnReport {
    /// Mean node-averaged awake complexity over the *churn* phases
    /// (1..) of the given job — the per-churn-event cost.
    fn churn_phase_awake(&self, job: usize) -> f64 {
        churn_phase_mean(&self.fleet.jobs[job].phases, |p| p.node_avg_awake.mean)
    }

    /// `(recompute job, repair job)` index pairs that differ only in
    /// strategy, in plan order.
    fn strategy_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for (i, job) in self.fleet.jobs.iter().enumerate() {
            if job.strategy != "recompute" {
                continue;
            }
            if let Some(j) = self.fleet.jobs.iter().position(|o| {
                o.strategy == "repair" && o.algo == job.algo && o.workload == job.workload
            }) {
                pairs.push((i, j));
            }
        }
        pairs
    }

    /// Renders the comparison table plus the headline ratios.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiment CH — MIS repair under churn (n = {}, {} phases, \
             edge churn {}, node churn {}) ==\n\n",
            self.config.n, self.config.phases, self.config.edge_churn, self.config.node_churn
        ));
        let mut t = TextTable::new(vec![
            "job",
            "phase-0 awake",
            "churn-phase awake",
            "repair scope",
            "carried",
            "valid",
        ]);
        for (i, j) in self.fleet.jobs.iter().enumerate() {
            // A zero-trial job has no phase aggregates; skip its row.
            let Some(phase0) = j.phases.first() else { continue };
            let scope = churn_phase_mean(&j.phases, |p| p.repair_scope_mean);
            let carried = churn_phase_mean(&j.phases, |p| p.carried_mean);
            t.row(vec![
                j.label.clone(),
                format!("{:.3}", phase0.node_avg_awake.mean),
                format!("{:.4}", self.churn_phase_awake(i)),
                format!("{scope:.1}"),
                format!("{carried:.1}"),
                format!("{:.0}%", 100.0 * j.valid_fraction),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        for j in &self.fleet.jobs {
            if j.updates.count > 0 {
                out.push_str(&format!(
                    "{}: {} updates, amortized {:.4} awake rounds per update \
                     (mean scope {:.2}, {} absorbed for free).\n",
                    j.label,
                    j.updates.count,
                    j.updates.awake_mean,
                    j.updates.scope_mean,
                    j.updates.zero_scope
                ));
            }
        }
        for (rec, rep) in self.strategy_pairs() {
            let full = self.churn_phase_awake(rec);
            let restricted = self.churn_phase_awake(rep);
            if restricted > 0.0 {
                out.push_str(&format!(
                    "{}: per churn event, repair averages {:.4} awake rounds/node vs {:.3} \
                     for recompute — {:.0}x cheaper; mean scope {:.1} of {} nodes.\n",
                    self.fleet.jobs[rep].label,
                    restricted,
                    full,
                    full / restricted,
                    churn_phase_mean(&self.fleet.jobs[rep].phases, |p| p.repair_scope_mean),
                    self.config.n
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_experiment_small() {
        let cfg = ChurnConfig {
            families: vec![GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
            n: 128,
            phases: 3,
            trials: 3,
            ..ChurnConfig::default()
        };
        let r = run_churn(&cfg).unwrap();
        // 2 families x 2 algos x 3 strategies.
        assert_eq!(r.fleet.jobs.len(), 12);
        for j in &r.fleet.jobs {
            assert_eq!(j.valid_fraction, 1.0, "{}", j.label);
            assert_eq!(j.phases.len(), 3);
            // Only incremental jobs report per-update accounting.
            assert_eq!(j.updates.count > 0, j.strategy == "incremental", "{}", j.label);
        }
        // Repair must be far cheaper than recompute on churn phases.
        for (rec, rep) in r.strategy_pairs() {
            let full = r.churn_phase_awake(rec);
            let restricted = r.churn_phase_awake(rep);
            assert!(
                restricted < full / 4.0,
                "{}: repair {restricted} not cheaper than recompute {full}",
                r.fleet.jobs[rep].label
            );
        }
        let text = r.render();
        assert!(text.contains("Experiment CH"));
        assert!(text.contains("cheaper"));
    }
}
