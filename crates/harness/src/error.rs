//! Harness error type.

use sleepy_graph::GraphError;
use sleepy_mis::MisError;
use sleepy_net::EngineError;
use std::error::Error;
use std::fmt;

/// Any failure inside an experiment: workload generation, algorithm
/// configuration, or engine execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// Workload generation failed.
    Graph(GraphError),
    /// SleepingMIS configuration or execution failed.
    Mis(MisError),
    /// Engine failure from a baseline run.
    Engine(EngineError),
    /// Writing a report to disk failed.
    Io(std::io::Error),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Graph(e) => write!(f, "workload generation failed: {e}"),
            HarnessError::Mis(e) => write!(f, "sleeping MIS failed: {e}"),
            HarnessError::Engine(e) => write!(f, "engine failed: {e}"),
            HarnessError::Io(e) => write!(f, "report output failed: {e}"),
        }
    }
}

impl Error for HarnessError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HarnessError::Graph(e) => Some(e),
            HarnessError::Mis(e) => Some(e),
            HarnessError::Engine(e) => Some(e),
            HarnessError::Io(e) => Some(e),
        }
    }
}

impl From<GraphError> for HarnessError {
    fn from(e: GraphError) -> Self {
        HarnessError::Graph(e)
    }
}

impl From<MisError> for HarnessError {
    fn from(e: MisError) -> Self {
        HarnessError::Mis(e)
    }
}

impl From<EngineError> for HarnessError {
    fn from(e: EngineError) -> Self {
        HarnessError::Engine(e)
    }
}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> Self {
        HarnessError::Io(e)
    }
}

impl From<sleepy_fleet::FleetError> for HarnessError {
    fn from(e: sleepy_fleet::FleetError) -> Self {
        use sleepy_fleet::FleetError;
        match e {
            FleetError::Graph(e) => HarnessError::Graph(e),
            FleetError::Mis(e) => HarnessError::Mis(e),
            FleetError::Engine(e) => HarnessError::Engine(e),
            FleetError::Io(e) => HarnessError::Io(e),
            // FleetError is #[non_exhaustive]; map anything else (e.g.
            // configuration errors) through Io.
            other => HarnessError::Io(std::io::Error::other(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: HarnessError = GraphError::SelfLoop { node: 1 }.into();
        assert!(e.to_string().contains("workload"));
        assert!(e.source().is_some());
        let e: HarnessError = MisError::DepthTooLarge { depth: 200 }.into();
        assert!(e.to_string().contains("MIS"));
        let e: HarnessError = EngineError::Deadlock { round: 0, unfinished: 1 }.into();
        assert!(e.to_string().contains("engine"));
    }
}
