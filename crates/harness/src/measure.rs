//! Unified measurement of any MIS algorithm on any workload.
//!
//! The measurement primitives live in [`sleepy_fleet`] (which owns the
//! worker pool, seed streams, and aggregation); this module re-exports
//! them and keeps the harness's classic [`AggregateMeasurement`] /
//! [`measure_trials`] API as a thin adapter over a one-job fleet plan.

use crate::error::HarnessError;
use serde::{Deserialize, Serialize};
use sleepy_fleet::{run_plan, FleetConfig, JobAggregate, JobSpec, TrialPlan, Workload};
use sleepy_stats::Summary;

pub use sleepy_fleet::{
    measure_once, AlgoKind, ComplexityReport, Execution, ALL_ALGOS, SLEEPING_ALGOS,
};

/// Aggregated measurements over several trials of one (workload,
/// algorithm) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateMeasurement {
    /// Algorithm label.
    pub algo: String,
    /// Workload label.
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Trials aggregated.
    pub trials: usize,
    /// Node-averaged awake complexity across trials.
    pub node_avg_awake: Summary,
    /// Worst-case awake complexity across trials.
    pub worst_awake: Summary,
    /// Worst-case round complexity across trials.
    pub worst_round: Summary,
    /// Node-averaged round complexity across trials.
    pub node_avg_round: Summary,
    /// Total messages across trials.
    pub messages: Summary,
    /// Fraction of trials whose output verified as an MIS.
    pub valid_fraction: f64,
    /// Total Algorithm 2 base-case timeouts observed.
    pub base_timeouts: usize,
}

/// Converts a fleet job aggregate into the harness's classic shape.
pub(crate) fn aggregate_measurement(
    workload: &Workload,
    algo: AlgoKind,
    agg: &JobAggregate,
) -> AggregateMeasurement {
    AggregateMeasurement {
        algo: algo.to_string(),
        workload: workload.label(),
        n: workload.n,
        trials: agg.trials as usize,
        node_avg_awake: agg.node_avg_awake.to_summary(),
        worst_awake: agg.worst_awake.to_summary(),
        worst_round: agg.worst_round.to_summary(),
        node_avg_round: agg.node_avg_round.to_summary(),
        messages: agg.messages.to_summary(),
        valid_fraction: agg.valid_fraction(),
        base_timeouts: agg.base_timeouts as usize,
    }
}

/// Runs `trials` seeded trials of `algo` on fresh instances of `workload`
/// and aggregates — a one-job fleet plan on the shared worker pool.
///
/// # Errors
///
/// The error of the smallest-index failing trial, if any.
pub fn measure_trials(
    workload: &Workload,
    algo: AlgoKind,
    trials: usize,
    base_seed: u64,
    execution: Execution,
) -> Result<AggregateMeasurement, HarnessError> {
    let plan = TrialPlan::new(base_seed).with_job(JobSpec {
        workload: *workload,
        algo,
        trials,
        execution,
    });
    let out = run_plan(&plan, &FleetConfig::default())?;
    Ok(aggregate_measurement(workload, algo, &out.aggregates[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::GraphFamily;

    #[test]
    fn trials_aggregate() {
        let w = Workload::new(GraphFamily::Cycle, 50);
        let agg = measure_trials(&w, AlgoKind::SleepingMis, 6, 11, Execution::Auto).unwrap();
        assert_eq!(agg.trials, 6);
        assert_eq!(agg.valid_fraction, 1.0);
        assert!(agg.node_avg_awake.mean > 0.0);
        assert!(agg.worst_awake.max >= agg.worst_awake.min);
        assert_eq!(agg.node_avg_awake.count, 6);
    }

    #[test]
    fn trials_deterministic() {
        let w = Workload::new(GraphFamily::GnpAvgDeg(4.0), 64);
        let a = measure_trials(&w, AlgoKind::FastSleepingMis, 4, 9, Execution::Auto).unwrap();
        let b = measure_trials(&w, AlgoKind::FastSleepingMis, 4, 9, Execution::Auto).unwrap();
        assert_eq!(a.node_avg_awake, b.node_avg_awake);
        assert_eq!(a.worst_round, b.worst_round);
    }
}
