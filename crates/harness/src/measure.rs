//! Unified measurement of any MIS algorithm on any workload.

use crate::error::HarnessError;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_baselines::{run_baseline, BaselineKind};
use sleepy_graph::Graph;
use sleepy_mis::{execute_sleeping_mis, run_sleeping_mis, MisConfig};
use sleepy_net::{ComplexitySummary, EngineConfig};
use sleepy_stats::Summary;
use sleepy_verify::verify_mis;

/// Every algorithm the harness can measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgoKind {
    /// Algorithm 1 (SleepingMIS).
    SleepingMis,
    /// Algorithm 2 (Fast-SleepingMIS).
    FastSleepingMis,
    /// A traditional-model baseline.
    Baseline(BaselineKind),
}

impl std::fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoKind::SleepingMis => f.write_str("SleepingMIS"),
            AlgoKind::FastSleepingMis => f.write_str("Fast-SleepingMIS"),
            AlgoKind::Baseline(b) => write!(f, "{b}"),
        }
    }
}

/// The paper's two algorithms.
pub const SLEEPING_ALGOS: [AlgoKind; 2] = [AlgoKind::SleepingMis, AlgoKind::FastSleepingMis];

/// All algorithms: the paper's two plus all four baselines.
pub const ALL_ALGOS: [AlgoKind; 6] = [
    AlgoKind::SleepingMis,
    AlgoKind::FastSleepingMis,
    AlgoKind::Baseline(BaselineKind::LubyA),
    AlgoKind::Baseline(BaselineKind::LubyB),
    AlgoKind::Baseline(BaselineKind::GreedyCrt),
    AlgoKind::Baseline(BaselineKind::Ghaffari),
];

/// How to execute a sleeping-model algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// Sleeping algorithms run on the fast combinatorial executor
    /// (bit-identical to the engine); baselines run on the engine.
    Auto,
    /// Everything runs on the message-passing engine (slower; used for
    /// cross-validation and when message/energy accounting is needed).
    ForceEngine,
}

/// One run's complexity measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplexityReport {
    /// Algorithm label.
    pub algo: String,
    /// Node count of the instance.
    pub n: usize,
    /// The four paper measures plus communication totals.
    pub summary: ComplexitySummary,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a maximal independent set.
    pub valid: bool,
    /// Algorithm 2 base-case timeouts in this run.
    pub base_timeouts: usize,
}

/// Runs `algo` once on `graph` with the given seed.
///
/// # Errors
///
/// Propagates configuration, generation and engine errors.
pub fn measure_once(
    graph: &Graph,
    algo: AlgoKind,
    seed: u64,
    execution: Execution,
) -> Result<ComplexityReport, HarnessError> {
    let (in_mis, summary, base_timeouts) = match (algo, execution) {
        (AlgoKind::SleepingMis, Execution::Auto) => {
            let out = execute_sleeping_mis(graph, MisConfig::alg1(seed))?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            (out.in_mis.clone(), out.summary(), timeouts)
        }
        (AlgoKind::FastSleepingMis, Execution::Auto) => {
            let out = execute_sleeping_mis(graph, MisConfig::alg2(seed))?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            (out.in_mis.clone(), out.summary(), timeouts)
        }
        (AlgoKind::SleepingMis, Execution::ForceEngine) => {
            let run = run_sleeping_mis(graph, MisConfig::alg1(seed), &EngineConfig::default())?;
            let t = run.base_timeouts.len();
            (run.in_mis, run.metrics.summary(), t)
        }
        (AlgoKind::FastSleepingMis, Execution::ForceEngine) => {
            let run = run_sleeping_mis(graph, MisConfig::alg2(seed), &EngineConfig::default())?;
            let t = run.base_timeouts.len();
            (run.in_mis, run.metrics.summary(), t)
        }
        (AlgoKind::Baseline(kind), _) => {
            let run = run_baseline(graph, kind, seed, &EngineConfig::default())?;
            (run.in_mis, run.metrics.summary(), 0)
        }
    };
    let valid = verify_mis(graph, &in_mis).is_ok();
    Ok(ComplexityReport {
        algo: algo.to_string(),
        n: graph.n(),
        summary,
        mis_size: in_mis.iter().filter(|&&b| b).count(),
        valid,
        base_timeouts,
    })
}

/// Aggregated measurements over several trials of one (workload,
/// algorithm) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateMeasurement {
    /// Algorithm label.
    pub algo: String,
    /// Workload label.
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Trials aggregated.
    pub trials: usize,
    /// Node-averaged awake complexity across trials.
    pub node_avg_awake: Summary,
    /// Worst-case awake complexity across trials.
    pub worst_awake: Summary,
    /// Worst-case round complexity across trials.
    pub worst_round: Summary,
    /// Node-averaged round complexity across trials.
    pub node_avg_round: Summary,
    /// Total messages across trials.
    pub messages: Summary,
    /// Fraction of trials whose output verified as an MIS.
    pub valid_fraction: f64,
    /// Total Algorithm 2 base-case timeouts observed.
    pub base_timeouts: usize,
}

/// Runs `trials` seeded trials of `algo` on fresh instances of `workload`
/// and aggregates. Trials run on `std::thread` workers.
///
/// # Errors
///
/// The first trial error encountered, if any.
pub fn measure_trials(
    workload: &Workload,
    algo: AlgoKind,
    trials: usize,
    base_seed: u64,
    execution: Execution,
) -> Result<AggregateMeasurement, HarnessError> {
    let reports = parallel_try_map(
        &(0..trials as u64).collect::<Vec<_>>(),
        |&t| -> Result<ComplexityReport, HarnessError> {
            let seed = base_seed.wrapping_add(t.wrapping_mul(0x5DEE_CE66));
            let g = workload.instance(seed)?;
            measure_once(&g, algo, seed, execution)
        },
    )?;
    Ok(aggregate(workload, algo, &reports))
}

fn aggregate(
    workload: &Workload,
    algo: AlgoKind,
    reports: &[ComplexityReport],
) -> AggregateMeasurement {
    let pull = |f: &dyn Fn(&ComplexityReport) -> f64| -> Summary {
        Summary::of(&reports.iter().map(f).collect::<Vec<_>>())
    };
    AggregateMeasurement {
        algo: algo.to_string(),
        workload: workload.label(),
        n: workload.n,
        trials: reports.len(),
        node_avg_awake: pull(&|r| r.summary.node_avg_awake),
        worst_awake: pull(&|r| r.summary.worst_awake as f64),
        worst_round: pull(&|r| r.summary.worst_round as f64),
        node_avg_round: pull(&|r| r.summary.node_avg_round),
        messages: pull(&|r| r.summary.total_messages as f64),
        valid_fraction: reports.iter().filter(|r| r.valid).count() as f64
            / reports.len().max(1) as f64,
        base_timeouts: reports.iter().map(|r| r.base_timeouts).sum(),
    }
}

/// Applies `f` to every item on a small thread pool, preserving order and
/// propagating the first error.
pub(crate) fn parallel_try_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let results: Vec<std::sync::Mutex<Option<Result<U, E>>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::GraphFamily;

    #[test]
    fn measure_once_all_algorithms() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(6.0), 80).instance(1).unwrap();
        for algo in ALL_ALGOS {
            let r = measure_once(&g, algo, 7, Execution::Auto).unwrap();
            assert!(r.valid, "{algo} invalid");
            assert!(r.mis_size > 0);
            assert!(r.summary.node_avg_awake > 0.0);
        }
    }

    #[test]
    fn engine_and_auto_agree_for_sleeping_algos() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(5.0), 60).instance(2).unwrap();
        for algo in SLEEPING_ALGOS {
            let a = measure_once(&g, algo, 3, Execution::Auto).unwrap();
            let b = measure_once(&g, algo, 3, Execution::ForceEngine).unwrap();
            assert_eq!(a.mis_size, b.mis_size, "{algo}");
            assert_eq!(a.summary.worst_round, b.summary.worst_round, "{algo}");
            assert!((a.summary.node_avg_awake - b.summary.node_avg_awake).abs() < 1e-9);
        }
    }

    #[test]
    fn trials_aggregate() {
        let w = Workload::new(GraphFamily::Cycle, 50);
        let agg =
            measure_trials(&w, AlgoKind::SleepingMis, 6, 11, Execution::Auto).unwrap();
        assert_eq!(agg.trials, 6);
        assert_eq!(agg.valid_fraction, 1.0);
        assert!(agg.node_avg_awake.mean > 0.0);
        assert!(agg.worst_awake.max >= agg.worst_awake.min);
    }

    #[test]
    fn trials_deterministic() {
        let w = Workload::new(GraphFamily::GnpAvgDeg(4.0), 64);
        let a = measure_trials(&w, AlgoKind::FastSleepingMis, 4, 9, Execution::Auto).unwrap();
        let b = measure_trials(&w, AlgoKind::FastSleepingMis, 4, 9, Execution::Auto).unwrap();
        assert_eq!(a.node_avg_awake, b.node_avg_awake);
        assert_eq!(a.worst_round, b.worst_round);
    }

    #[test]
    fn parallel_map_orders_and_errors() {
        let items: Vec<u32> = (0..50).collect();
        let ok: Result<Vec<u32>, ()> = parallel_try_map(&items, |&x| Ok(x * 2));
        assert_eq!(ok.unwrap(), items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let err: Result<Vec<u32>, u32> =
            parallel_try_map(&items, |&x| if x == 30 { Err(x) } else { Ok(x) });
        assert!(err.is_err());
    }
}
