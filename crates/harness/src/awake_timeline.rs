//! **Experiment AW — awake fraction over rounds (flight-recorder figure).**
//!
//! The paper's headline claim is about the *area* under the awake curve:
//! O(1) node-averaged awake complexity means the per-round awake
//! fractions sum to a constant, independent of n. This experiment uses
//! the protocol flight recorder ([`sleepy_fleet::record_round_series`])
//! to measure that curve directly: for every algorithm it replays
//! engine runs with the [`RoundSeries`] sink attached and aggregates,
//! per active-round index, the fraction of nodes awake and the
//! cumulative awake rounds per node. The sleeping algorithms should
//! show a sharp geometric decay (most nodes asleep after the first few
//! active rounds) while the always-awake baselines hold near 1.0 until
//! termination.
//!
//! Every recorded trial passes the schedule validators on the way in —
//! a timeline that disagrees with the engine's own accounting is an
//! error, not a plot.
//!
//! [`RoundSeries`]: sleepy_net::RoundSeries

use crate::error::HarnessError;
use crate::measure::ALL_ALGOS;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_fleet::{deterministic_map, record_round_series};
use sleepy_graph::GraphFamily;
use sleepy_stats::TextTable;

/// Configuration of experiment AW.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AwakeTimelineConfig {
    /// Graph family.
    pub family: GraphFamily,
    /// Node count.
    pub n: usize,
    /// Recorded trials per algorithm (same instances across algorithms).
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for AwakeTimelineConfig {
    fn default() -> Self {
        AwakeTimelineConfig {
            family: GraphFamily::GnpAvgDeg(8.0),
            n: 1 << 10,
            trials: 5,
            base_seed: 0xA3A,
        }
    }
}

/// One point of an algorithm's awake curve: the `index`-th *active*
/// round, averaged across trials.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AwakePoint {
    /// Active-round index (idle rounds never get a row).
    pub index: u32,
    /// Mean engine round number at this index, over the trials that
    /// reached it.
    pub round_mean: f64,
    /// Mean fraction of nodes awake (trials already finished contribute
    /// 0, so the curve integrates to `node_avg_awake`).
    pub awake_fraction: f64,
    /// Mean cumulative awake rounds per node through this index.
    pub cum_node_avg: f64,
}

/// The recorded awake curve of one algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgoTimeline {
    /// Algorithm label.
    pub algo: String,
    /// Mean engine rounds to global termination.
    pub rounds_mean: f64,
    /// Mean number of active rounds (rows recorded).
    pub active_rounds_mean: f64,
    /// Mean node-averaged awake complexity, from the recorder's own
    /// cumulative counter.
    pub node_avg_awake: f64,
    /// The averaged curve, one point per active-round index.
    pub series: Vec<AwakePoint>,
}

/// Results of experiment AW.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AwakeTimelineReport {
    /// The configuration used.
    pub config: AwakeTimelineConfig,
    /// One recorded curve per algorithm.
    pub algos: Vec<AlgoTimeline>,
}

/// Runs experiment AW.
///
/// # Errors
///
/// Propagates workload, execution, and schedule-validation failures.
pub fn run_awake_timeline(
    config: &AwakeTimelineConfig,
) -> Result<AwakeTimelineReport, HarnessError> {
    let workload = Workload::new(config.family, config.n);
    let algos = ALL_ALGOS;
    // One recorded engine run per (algorithm, trial), in parallel on the
    // fleet pool; results come back in index order so the aggregation
    // below is deterministic regardless of thread count.
    let per_run = deterministic_map(algos.len() * config.trials, 0, |i| {
        let (a, t) = (i / config.trials, i % config.trials);
        let seed = config.base_seed.wrapping_add(t as u64 * 0x9E37);
        let graph = workload.instance(seed)?;
        let rec = record_round_series(&graph, algos[a], seed, false)?;
        Ok::<_, HarnessError>((rec.rows, rec.metrics))
    })?;
    let n = config.n as f64;
    let trials = config.trials as f64;
    let mut out = Vec::with_capacity(algos.len());
    for (a, algo) in algos.iter().enumerate() {
        let runs = &per_run[a * config.trials..(a + 1) * config.trials];
        let max_len = runs.iter().map(|(rows, _)| rows.len()).max().unwrap_or(0);
        let mut series = Vec::with_capacity(max_len);
        for i in 0..max_len {
            let mut awake_sum = 0.0;
            let mut cum_sum = 0.0;
            let mut round_sum = 0.0;
            let mut reached = 0.0f64;
            for (rows, _) in runs {
                match rows.get(i) {
                    Some(row) => {
                        awake_sum += row.awake as f64;
                        cum_sum += row.cum_awake as f64;
                        round_sum += row.round as f64;
                        reached += 1.0;
                    }
                    // This trial already terminated: 0 awake from here
                    // on, and its cumulative total stays frozen.
                    None => cum_sum += rows.last().map_or(0, |r| r.cum_awake) as f64,
                }
            }
            series.push(AwakePoint {
                index: i as u32,
                round_mean: round_sum / reached.max(1.0),
                awake_fraction: awake_sum / (trials * n),
                cum_node_avg: cum_sum / (trials * n),
            });
        }
        out.push(AlgoTimeline {
            algo: algo.to_string(),
            rounds_mean: runs.iter().map(|(_, m)| m.total_rounds as f64).sum::<f64>() / trials,
            active_rounds_mean: runs.iter().map(|(rows, _)| rows.len() as f64).sum::<f64>()
                / trials,
            node_avg_awake: runs
                .iter()
                .map(|(rows, _)| rows.last().map_or(0, |r| r.cum_awake) as f64 / n)
                .sum::<f64>()
                / trials,
            series,
        });
    }
    Ok(AwakeTimelineReport { config: config.clone(), algos: out })
}

/// Active-round indices shown per algorithm in the text rendering (the
/// JSON report always carries the full series).
const RENDERED_POINTS: usize = 12;

impl AwakeTimelineReport {
    /// Renders the per-algorithm curves and the cross-algorithm summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiment AW: awake fraction over rounds ({}, n = {}, {} trials) ==\n\n",
            self.config.family.label(),
            self.config.n,
            self.config.trials,
        ));
        for a in &self.algos {
            let mut t = TextTable::new(vec![
                "active round",
                "engine round",
                "awake frac",
                "cum awake/node",
            ]);
            for p in a.series.iter().take(RENDERED_POINTS) {
                t.row(vec![
                    p.index.to_string(),
                    format!("{:.1}", p.round_mean),
                    format!("{:.4}", p.awake_fraction),
                    format!("{:.3}", p.cum_node_avg),
                ]);
            }
            out.push_str(&format!("-- {} --\n{}", a.algo, t.render()));
            if a.series.len() > RENDERED_POINTS {
                out.push_str(&format!(
                    "   ... {} more active rounds (full series in the JSON report)\n",
                    a.series.len() - RENDERED_POINTS
                ));
            }
            out.push('\n');
        }
        let mut t = TextTable::new(vec![
            "algorithm",
            "rounds",
            "active rounds",
            "node-avg awake (= area under curve)",
        ]);
        for a in &self.algos {
            t.row(vec![
                a.algo.clone(),
                format!("{:.1}", a.rounds_mean),
                format!("{:.1}", a.active_rounds_mean),
                format!("{:.3}", a.node_avg_awake),
            ]);
        }
        out.push_str(&format!("-- summary --\n{}", t.render()));
        out.push_str(
            "\nEvery recorded trial was cross-checked by the schedule validators\n\
             (timeline totals vs the engine's per-node accounting).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::AlgoKind;

    #[test]
    fn awake_timeline_runs_small() {
        let cfg = AwakeTimelineConfig {
            family: GraphFamily::GnpAvgDeg(5.0),
            n: 64,
            trials: 2,
            base_seed: 7,
        };
        let r = run_awake_timeline(&cfg).unwrap();
        assert_eq!(r.algos.len(), ALL_ALGOS.len());
        for a in &r.algos {
            // Round 0: everyone is awake in every algorithm.
            assert!((a.series[0].awake_fraction - 1.0).abs() < 1e-9, "{}", a.algo);
            // The curve integrates to the node-averaged awake complexity.
            let area: f64 = a.series.iter().map(|p| p.awake_fraction).sum();
            assert!((area - a.node_avg_awake).abs() < 1e-6, "{}", a.algo);
            assert!(a.rounds_mean >= a.active_rounds_mean);
        }
        let text = r.render();
        assert!(text.contains("Experiment AW"));
        assert!(text.contains("SleepingMIS"));
    }

    #[test]
    fn sleeping_curve_decays_below_baselines() {
        let cfg = AwakeTimelineConfig {
            family: GraphFamily::GnpAvgDeg(6.0),
            n: 128,
            trials: 2,
            base_seed: 3,
        };
        let r = run_awake_timeline(&cfg).unwrap();
        let by_name = |name: &str| r.algos.iter().find(|a| a.algo == name).unwrap();
        let alg1 = by_name(&AlgoKind::SleepingMis.to_string());
        let luby = by_name("Luby-A");
        // By the 4th active round most sleeping-MIS nodes are asleep,
        // while Luby keeps (nearly) everyone awake until termination.
        assert!(alg1.series[3].awake_fraction < 0.5, "{}", alg1.series[3].awake_fraction);
        assert!(luby.series[3].awake_fraction > 0.5, "{}", luby.series[3].awake_fraction);
    }
}
