//! **Experiments TH1 / TH2 — Theorems 1 and 2 scaling.**
//!
//! Theorem 1 (Algorithm 1): O(1) expected node-averaged awake complexity,
//! O(log n) worst-case awake complexity, O(n³) worst-case (and
//! node-averaged) round complexity.
//!
//! Theorem 2 (Algorithm 2): O(1) node-averaged awake, O(log n) worst-case
//! awake, O(log^{ℓ+1} n) = O(log^3.41 n) worst-case (and node-averaged)
//! round complexity.
//!
//! The experiment sweeps n over powers of two on the combinatorial
//! executor (bit-identical to the protocol) and fits growth shapes:
//! the awake average should be flat, the awake worst case should scale
//! like log n, Algorithm 1's rounds like n³ and Algorithm 2's rounds like
//! a power of log n with exponent near ℓ + 1 ≈ 3.41.

use crate::error::HarnessError;
use crate::measure::{measure_trials, AggregateMeasurement, AlgoKind, Execution};
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_graph::GraphFamily;
use sleepy_mis::{depth_alg1, depth_alg2, greedy_iterations, Schedule, ELL};
use sleepy_stats::{fit_log_power, fit_power, TextTable};

/// Configuration of the theorem-scaling experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoremsConfig {
    /// Graph family.
    pub family: GraphFamily,
    /// Exponents of the n = 2^e sweep.
    pub size_exponents: Vec<u32>,
    /// Trials per size.
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for TheoremsConfig {
    fn default() -> Self {
        TheoremsConfig {
            family: GraphFamily::GnpAvgDeg(8.0),
            size_exponents: (7..=16).collect(),
            trials: 5,
            base_seed: 0x7E0,
        }
    }
}

/// One algorithm's measured sweep plus fitted shapes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoremScaling {
    /// Algorithm label.
    pub algo: String,
    /// Aggregates per size.
    pub sweep: Vec<AggregateMeasurement>,
    /// Fitted n-exponent of node-averaged awake complexity (claim: ≈ 0).
    pub avg_awake_n_exponent: f64,
    /// Fitted (log n)-exponent of worst-case awake complexity (claim: ≈ 1).
    pub worst_awake_log_exponent: f64,
    /// Fitted n-exponent of worst-case round complexity
    /// (claim: ≈ 3 for Algorithm 1).
    pub worst_round_n_exponent: f64,
    /// Fitted (log n)-exponent of worst-case round complexity
    /// (claim: ≈ ℓ+1 ≈ 3.41 for Algorithm 2).
    pub worst_round_log_exponent: f64,
    /// The padded schedule bound T(K) per size (the theory curve).
    pub padded_schedule: Vec<u64>,
}

/// Results of experiments TH1 and TH2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoremsReport {
    /// The configuration used.
    pub config: TheoremsConfig,
    /// Algorithm 1 scaling (Theorem 1).
    pub alg1: TheoremScaling,
    /// Algorithm 2 scaling (Theorem 2).
    pub alg2: TheoremScaling,
}

fn scale_one(config: &TheoremsConfig, algo: AlgoKind) -> Result<TheoremScaling, HarnessError> {
    let mut sweep = Vec::new();
    let mut padded = Vec::new();
    for &e in &config.size_exponents {
        let n = 1usize << e;
        let workload = Workload::new(config.family, n);
        sweep.push(measure_trials(
            &workload,
            algo,
            config.trials,
            config.base_seed,
            Execution::Auto,
        )?);
        let t_k = match algo {
            AlgoKind::SleepingMis => Schedule::alg1().duration(depth_alg1(n)).unwrap_or(u64::MAX),
            AlgoKind::FastSleepingMis => {
                let budget = 1 + 2 * greedy_iterations(n, 4.0) as u64;
                Schedule::alg2(budget).duration(depth_alg2(n)).unwrap_or(u64::MAX)
            }
            AlgoKind::Baseline(_) => 0,
        };
        padded.push(t_k);
    }
    let ns: Vec<f64> = sweep.iter().map(|s| s.n as f64).collect();
    let avg_awake: Vec<f64> = sweep.iter().map(|s| s.node_avg_awake.mean).collect();
    let worst_awake: Vec<f64> = sweep.iter().map(|s| s.worst_awake.mean).collect();
    let worst_round: Vec<f64> = sweep.iter().map(|s| s.worst_round.mean).collect();
    Ok(TheoremScaling {
        algo: algo.to_string(),
        avg_awake_n_exponent: fit_power(&ns, &avg_awake).exponent,
        worst_awake_log_exponent: fit_log_power(&ns, &worst_awake).exponent,
        worst_round_n_exponent: fit_power(&ns, &worst_round).exponent,
        worst_round_log_exponent: fit_log_power(&ns, &worst_round).exponent,
        padded_schedule: padded,
        sweep,
    })
}

/// Runs experiments TH1 and TH2.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_theorems(config: &TheoremsConfig) -> Result<TheoremsReport, HarnessError> {
    Ok(TheoremsReport {
        config: config.clone(),
        alg1: scale_one(config, AlgoKind::SleepingMis)?,
        alg2: scale_one(config, AlgoKind::FastSleepingMis)?,
    })
}

impl TheoremsReport {
    /// Renders the sweep and the fitted shapes against the claims.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiments TH1/TH2 — theorem scaling on {} ({} trials/size) ==\n\n",
            self.config.family, self.config.trials
        ));
        for scaling in [&self.alg1, &self.alg2] {
            out.push_str(&format!("-- {} --\n", scaling.algo));
            let mut t = TextTable::new(vec![
                "n",
                "avg awake",
                "worst awake",
                "worst round",
                "avg round",
                "padded T(K)",
            ]);
            for (agg, padded) in scaling.sweep.iter().zip(&scaling.padded_schedule) {
                t.row(vec![
                    agg.n.to_string(),
                    format!("{:.2}", agg.node_avg_awake.mean),
                    format!("{:.1}", agg.worst_awake.mean),
                    format!("{:.0}", agg.worst_round.mean),
                    format!("{:.0}", agg.node_avg_round.mean),
                    padded.to_string(),
                ]);
            }
            out.push_str(&t.render());
            out.push_str(&format!(
                "fits: avg-awake n-exp {:.3} (claim ~0) | worst-awake log-exp {:.2} (claim ~1) \
                 | worst-round n-exp {:.2} | worst-round log-exp {:.2}\n",
                scaling.avg_awake_n_exponent,
                scaling.worst_awake_log_exponent,
                scaling.worst_round_n_exponent,
                scaling.worst_round_log_exponent,
            ));
            if scaling.algo == "SleepingMIS" {
                out.push_str("claims: worst-round n-exp ~3 (Theorem 1's O(n^3))\n\n");
            } else {
                out.push_str(&format!(
                    "claims: worst-round log-exp ~ l+1 = {:.2} (Theorem 2's O(log^3.41 n))\n\n",
                    ELL + 1.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_scaling_small_sweep() {
        let cfg = TheoremsConfig {
            family: GraphFamily::GnpAvgDeg(6.0),
            size_exponents: (7..=11).collect(),
            trials: 3,
            base_seed: 5,
        };
        let r = run_theorems(&cfg).unwrap();
        // O(1) average awake: tiny n-exponent.
        assert!(r.alg1.avg_awake_n_exponent.abs() < 0.2, "{}", r.alg1.avg_awake_n_exponent);
        assert!(r.alg2.avg_awake_n_exponent.abs() < 0.2, "{}", r.alg2.avg_awake_n_exponent);
        // Algorithm 1 rounds grow polynomially, algorithm 2 stays polylog:
        // by n = 2^11 the gap must be enormous.
        let a1 = r.alg1.sweep.last().unwrap().worst_round.mean;
        let a2 = r.alg2.sweep.last().unwrap().worst_round.mean;
        assert!(a1 > 50.0 * a2, "alg1 {a1} vs alg2 {a2}");
        // Measured rounds never exceed the padded schedule.
        for (agg, padded) in r.alg1.sweep.iter().zip(&r.alg1.padded_schedule) {
            assert!(agg.worst_round.max <= *padded as f64);
        }
        assert!(r.render().contains("TH1"));
    }
}
