//! **Experiment F1 — Figure 1 of the paper.**
//!
//! Figure 1 shows "a sample recursion tree consisting of four levels; each
//! tree vertex is labeled with two numbers — the first of which denotes
//! the time when the vertex is reached for the first time, while the
//! second number denotes the time when computation finishes at that
//! vertex."
//!
//! We regenerate the figure two ways:
//!
//! 1. **Label-exact** under the figure's own timing convention
//!    (`Schedule::figure1()`: right recursion before the second isolated
//!    detection, T(0) = 1, clock starting at 1) — the output reproduces
//!    the paper's labels (1,29), (2,14), (3,7), (4,4), (6,6), (9,13), …
//!    verbatim, and the report asserts this.
//! 2. Under the **normative pseudocode schedule** used by the actual
//!    algorithm (Lemma 10: T(k) = 3(2^k − 1)), for comparison.
//!
//! Additionally it prints a *populated* recursion tree from a real
//! execution, showing which calls are non-empty and how many nodes each
//! one handles.

use crate::error::HarnessError;
use serde::{Deserialize, Serialize};
use sleepy_graph::GraphFamily;
use sleepy_mis::{execute_sleeping_mis, schedule_tree, MisConfig, Schedule, ScheduleTreeNode};
use sleepy_stats::TextTable;

/// The labels of the paper's Figure 1, as printed in the paper (path from
/// root using L/R, first-reached time, finish time).
pub const PAPER_FIGURE1_LABELS: [(&str, u64, u64); 15] = [
    ("", 1, 29),
    ("L", 2, 14),
    ("LL", 3, 7),
    ("LLL", 4, 4),
    ("LLR", 6, 6),
    ("LR", 9, 13),
    ("LRL", 10, 10),
    ("LRR", 12, 12),
    ("R", 16, 28),
    ("RL", 17, 21),
    ("RLL", 18, 18),
    ("RLR", 20, 20),
    ("RR", 23, 27),
    ("RRL", 24, 24),
    ("RRR", 26, 26),
];

/// Results of experiment F1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure1Report {
    /// The tree under the figure's convention (clock origin 1).
    pub figure_convention: Vec<ScheduleTreeNode>,
    /// The tree under the pseudocode schedule (clock origin 0).
    pub pseudocode_convention: Vec<ScheduleTreeNode>,
    /// Whether every label matches the paper's figure exactly.
    pub labels_match_paper: bool,
    /// A rendered populated tree from a real execution.
    pub sample_execution_tree: String,
}

/// Runs experiment F1.
///
/// # Errors
///
/// Propagates schedule and execution failures.
pub fn run_figure1() -> Result<Figure1Report, HarnessError> {
    let figure = schedule_tree(3, &Schedule::figure1(), 1)?;
    let pseudo = schedule_tree(3, &Schedule::alg1(), 0)?;
    let labels_match_paper = PAPER_FIGURE1_LABELS.iter().all(|&(path, first, finish)| {
        figure.iter().any(|n| n.path == path && n.first_reached == first && n.finish == finish)
    });
    // A real populated tree: a small G(n, p) instance under Algorithm 1
    // with the recursion truncated to 3 levels for legibility.
    let g = GraphFamily::GnpAvgDeg(4.0).generate(24, 5)?;
    let mut cfg = MisConfig::alg1(5);
    cfg.depth_override = Some(3);
    let out = execute_sleeping_mis(&g, cfg)?;
    Ok(Figure1Report {
        figure_convention: figure,
        pseudocode_convention: pseudo,
        labels_match_paper,
        sample_execution_tree: out.tree.render_ascii(3),
    })
}

impl Figure1Report {
    /// Renders both trees and the sample execution.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Experiment F1 (Figure 1): recursion-tree timing labels ==\n\n");
        out.push_str(&format!(
            "labels match the paper's figure exactly: {}\n\n",
            if self.labels_match_paper { "YES" } else { "NO — see EXPERIMENTS.md" }
        ));
        let render_tree = |nodes: &[ScheduleTreeNode], title: &str| -> String {
            let mut t = TextTable::new(vec!["vertex", "k", "first reached", "finish"]);
            for n in nodes {
                let name = if n.path.is_empty() { "root".to_string() } else { n.path.clone() };
                t.row(vec![
                    format!("{}{}", "  ".repeat(n.depth as usize), name),
                    n.k.to_string(),
                    n.first_reached.to_string(),
                    n.finish.to_string(),
                ]);
            }
            format!("{title}\n{}\n", t.render())
        };
        out.push_str(&render_tree(
            &self.figure_convention,
            "-- Figure 1 convention (T(0)=1, right recursion before second-iso, clock from 1) --",
        ));
        out.push_str(&render_tree(
            &self.pseudocode_convention,
            "-- Pseudocode schedule (T(k) = 3(2^k - 1), Lemma 10, clock from 0) --",
        ));
        out.push_str("-- Sample populated recursion tree (Algorithm 1, n=24, depth 3) --\n");
        out.push_str(&self.sample_execution_tree);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reproduces_paper_labels() {
        let r = run_figure1().unwrap();
        assert!(r.labels_match_paper);
        assert_eq!(r.figure_convention.len(), 15);
        assert_eq!(r.pseudocode_convention.len(), 15);
        let text = r.render();
        assert!(text.contains("YES"));
        assert!(text.contains("29"));
    }

    #[test]
    fn pseudocode_root_duration_matches_lemma10() {
        let r = run_figure1().unwrap();
        let root = &r.pseudocode_convention[0];
        // T(3) = 3*(2^3-1) = 21 rounds: [0, 20].
        assert_eq!(root.first_reached, 0);
        assert_eq!(root.finish, 20);
    }
}
