//! **Experiment EN — the energy motivation of §1.1.**
//!
//! The paper motivates the sleeping model by the energy profile of ad-hoc
//! wireless and sensor networks: idle listening costs almost as much as
//! transmitting, while *"in sleeping mode, we assume that there is no
//! energy spent"*. This experiment runs the sleeping algorithms and the
//! always-awake baselines on random geometric graphs (the standard
//! sensor-network topology) through the *message-passing engine* (so
//! transmit/receive counts are real) and reports per-node energy under
//! three sleep-cost models.
//!
//! Two honesty notes, both recorded in EXPERIMENTS.md:
//!
//! 1. **Termination convention matters.** Our baselines implement the
//!    favorable Barenboim–Tzur convention (a node announces its output and
//!    terminates), which already saves most idle energy on sparse random
//!    graphs. The paper's Table 1 instead treats prior algorithms in the
//!    *traditional model* where every node stays awake until the global
//!    end — we report both variants (`<algo>` and `<algo>+awake-to-end`).
//! 2. **A nonzero sleep cost interacts with schedule length.** Algorithm
//!    1's Θ(n³) wall-clock schedule multiplies any per-round sleep cost by
//!    an enormous lifetime, eroding its advantage; Algorithm 2's polylog
//!    schedule keeps the advantage under realistic sleep costs — the
//!    energy case for Theorem 2, not just a latency nicety.

use crate::error::HarnessError;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_baselines::{run_baseline, BaselineKind};
use sleepy_fleet::deterministic_map;
use sleepy_graph::GraphFamily;
use sleepy_mis::{run_sleeping_mis, MisConfig};
use sleepy_net::{EnergyModel, EngineConfig, RunMetrics};
use sleepy_stats::{Summary, TextTable};

/// Configuration of the energy experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Node counts to test (sensor-network sizes).
    pub sizes: Vec<usize>,
    /// Average degree of the geometric graphs.
    pub avg_degree: f64,
    /// Trials per size.
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            sizes: vec![256, 512, 1024, 2048],
            avg_degree: 8.0,
            trials: 5,
            base_seed: 0xE9,
        }
    }
}

/// The three cost models of the experiment.
///
/// The paper's measure (§1.2) is *awake time*: since idle ≈ receive ≈
/// transmit power, a round costs the same whether the radio transmits or
/// just listens, and sleeping is free. The second model adds per-message
/// surcharges (sensitive to Algorithm 1's broadcast-heavy sync rounds);
/// the third also charges 2% of idle per sleeping round (the conservative
/// end of the measurements the paper cites).
fn models() -> [(&'static str, EnergyModel); 3] {
    let paper = EnergyModel {
        idle_per_round: 1.0,
        sleep_per_round: 0.0,
        tx_per_message: 0.0,
        rx_per_message: 0.0,
    };
    [
        ("awake-rounds (paper)", paper),
        ("+tx/rx surcharge", EnergyModel { tx_per_message: 0.4, rx_per_message: 0.2, ..paper }),
        (
            "+sleep=0.02",
            EnergyModel {
                tx_per_message: 0.4,
                rx_per_message: 0.2,
                sleep_per_round: 0.02,
                ..paper
            },
        ),
    ]
}

/// Energy readings of one algorithm variant at one size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyCell {
    /// Algorithm label (`+awake-to-end` marks the traditional-model
    /// variant where nodes stay awake until the last node finishes).
    pub algo: String,
    /// Node count.
    pub n: usize,
    /// Mean per-node energy under each model, in `models()` order.
    pub mean_energy: Vec<Summary>,
    /// Mean worst single-node energy under the paper model (the
    /// battery-lifetime bottleneck).
    pub max_energy_paper: Summary,
}

/// Results of experiment EN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyReport {
    /// The configuration used.
    pub config: EnergyConfig,
    /// One cell per (algorithm variant, size).
    pub cells: Vec<EnergyCell>,
}

/// Sleeping-model algorithms plus baselines measured in the experiment.
const ENERGY_ALGOS: [&str; 4] = ["SleepingMIS", "Fast-SleepingMIS", "Luby-B", "Greedy-CRT"];

fn run_metrics_for(
    algo: &str,
    g: &sleepy_graph::Graph,
    seed: u64,
) -> Result<RunMetrics, HarnessError> {
    let ec = EngineConfig::default();
    Ok(match algo {
        "SleepingMIS" => run_sleeping_mis(g, MisConfig::alg1(seed), &ec)?.metrics,
        "Fast-SleepingMIS" => run_sleeping_mis(g, MisConfig::alg2(seed), &ec)?.metrics,
        "Luby-B" => run_baseline(g, BaselineKind::LubyB, seed, &ec)?.metrics,
        "Greedy-CRT" => run_baseline(g, BaselineKind::GreedyCrt, seed, &ec)?.metrics,
        other => unreachable!("unknown energy algo {other}"),
    })
}

/// Converts metrics into the traditional always-awake accounting: every
/// node is charged awake (idle) cost for the entire run.
fn awake_to_end(metrics: &RunMetrics) -> RunMetrics {
    let mut m = metrics.clone();
    for nm in &mut m.per_node {
        nm.awake_rounds = m.total_rounds;
        nm.finish_round = Some(m.total_rounds.saturating_sub(1));
    }
    m
}

/// Runs experiment EN.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_energy(config: &EnergyConfig) -> Result<EnergyReport, HarnessError> {
    let mut cells = Vec::new();
    for &n in &config.sizes {
        let workload = Workload::new(GraphFamily::GeometricAvgDeg(config.avg_degree), n);
        for algo in ENERGY_ALGOS {
            let seeds: Vec<u64> =
                (0..config.trials as u64).map(|t| config.base_seed + 131 * t).collect();
            type Row = (Vec<f64>, f64, Option<Vec<f64>>);
            let per_trial = deterministic_map(seeds.len(), 0, |i| -> Result<Row, HarnessError> {
                let seed = seeds[i];
                let g = workload.instance(seed)?;
                let metrics = run_metrics_for(algo, &g, seed)?;
                let means: Vec<f64> =
                    models().iter().map(|(_, m)| m.report(&metrics).mean).collect();
                let max_paper = models()[0].1.report(&metrics).max;
                // Baselines get a second, traditional-model reading.
                let strict = if algo.starts_with("Luby") || algo.starts_with("Greedy") {
                    let sm = awake_to_end(&metrics);
                    Some(models().iter().map(|(_, m)| m.report(&sm).mean).collect())
                } else {
                    None
                };
                Ok((means, max_paper, strict))
            })?;
            let collect_model = |pick: &dyn Fn(&Row) -> Option<Vec<f64>>| -> Option<Vec<Summary>> {
                let rows: Vec<Vec<f64>> = per_trial.iter().filter_map(pick).collect();
                if rows.is_empty() {
                    return None;
                }
                Some(
                    (0..models().len())
                        .map(|i| Summary::of(&rows.iter().map(|r| r[i]).collect::<Vec<_>>()))
                        .collect(),
                )
            };
            cells.push(EnergyCell {
                algo: algo.to_string(),
                n,
                mean_energy: collect_model(&|t: &Row| Some(t.0.clone()))
                    .expect("at least one trial"),
                max_energy_paper: Summary::of(&per_trial.iter().map(|t| t.1).collect::<Vec<_>>()),
            });
            if let Some(strict) = collect_model(&|t: &Row| t.2.clone()) {
                cells.push(EnergyCell {
                    algo: format!("{algo}+awake-to-end"),
                    n,
                    mean_energy: strict,
                    max_energy_paper: Summary::of(&[]),
                });
            }
        }
    }
    Ok(EnergyReport { config: config.clone(), cells })
}

impl EnergyReport {
    /// Mean per-node energy of `algo` at size `n` under model index
    /// `model`.
    pub fn mean_energy(&self, algo: &str, n: usize, model: usize) -> Option<f64> {
        self.cells.iter().find(|c| c.algo == algo && c.n == n).map(|c| c.mean_energy[model].mean)
    }

    /// Renders the energy comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiment EN — sensor-network energy (geometric graphs, avg degree {}) ==\n\n",
            self.config.avg_degree
        ));
        let names: Vec<&str> = models().iter().map(|(name, _)| *name).collect();
        let mut t = TextTable::new(vec![
            "algorithm",
            "n",
            names[0],
            names[1],
            names[2],
            "max node (paper)",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.algo.clone(),
                c.n.to_string(),
                format!("{:.2}", c.mean_energy[0].mean),
                format!("{:.2}", c.mean_energy[1].mean),
                format!("{:.2}", c.mean_energy[2].mean),
                if c.max_energy_paper.count == 0 {
                    String::new()
                } else {
                    format!("{:.1}", c.max_energy_paper.mean)
                },
            ]);
        }
        out.push_str(&t.render());
        if let Some(&n) = self.config.sizes.iter().max() {
            if let (Some(s1), Some(s2), Some(luby)) = (
                self.mean_energy("SleepingMIS", n, 0),
                self.mean_energy("Fast-SleepingMIS", n, 0),
                self.mean_energy("Luby-B+awake-to-end", n, 0),
            ) {
                out.push_str(&format!(
                    "\nPaper model (awake rounds), vs traditional always-awake Luby-B at \
                     n = {n}: SleepingMIS at {:.2}x, Fast-SleepingMIS at {:.2}x of its \
                     energy. The sleeping profiles are flat in n (O(1) guarantee); the \
                     always-awake cost grows with the O(log n) completion time, so the \
                     ratio improves with n.\n",
                    s1 / luby,
                    s2 / luby
                ));
            }
            if let (Some(s1), Some(s2), Some(luby)) = (
                self.mean_energy("SleepingMIS", n, 2),
                self.mean_energy("Fast-SleepingMIS", n, 2),
                self.mean_energy("Luby-B+awake-to-end", n, 2),
            ) {
                out.push_str(&format!(
                    "With a 2% sleep cost the Θ(n³) schedule costs SleepingMIS {:.1}x \
                     always-awake Luby-B, while Fast-SleepingMIS stays at {:.2}x — the \
                     energy case for Theorem 2's polylog schedule.\n",
                    s1 / luby,
                    s2 / luby
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_experiment_small() {
        let cfg = EnergyConfig { sizes: vec![128, 256], avg_degree: 6.0, trials: 2, base_seed: 9 };
        let r = run_energy(&cfg).unwrap();
        // 4 algorithms + 2 traditional variants, per size.
        assert_eq!(r.cells.len(), 2 * 6);
        // The sleeping algorithms' awake-round energy is flat in n (the
        // O(1) node-averaged awake guarantee), while always-awake cost
        // tracks the growing completion time.
        for algo in ["SleepingMIS", "Fast-SleepingMIS"] {
            let small = r.mean_energy(algo, 128, 0).unwrap();
            let large = r.mean_energy(algo, 256, 0).unwrap();
            assert!(large < 2.0 * small, "{algo} awake energy not flat: {small} -> {large}");
        }
        // Under the conservative model, Algorithm 1's cubic schedule makes
        // it lose badly — the documented phenomenon motivating Theorem 2 —
        // while Algorithm 2's polylog schedule stays in contention.
        let a1 = r.mean_energy("SleepingMIS", 256, 2).unwrap();
        let a2 = r.mean_energy("Fast-SleepingMIS", 256, 2).unwrap();
        let luby = r.mean_energy("Luby-B+awake-to-end", 256, 2).unwrap();
        assert!(a1 > 10.0 * luby, "expected the n^3 schedule to dominate: {a1} vs {luby}");
        assert!(a2 < a1 / 10.0, "alg2 should be far cheaper than alg1: {a2} vs {a1}");
        let text = r.render();
        assert!(text.contains("always-awake"));
        assert!(text.contains("polylog schedule"));
    }
}
