//! **Experiments C1 / WHP — Corollary 1 and Lemma 1.**
//!
//! * **Corollary 1**: `SleepingMISRecursive` and the parallel/distributed
//!   randomized greedy MIS produce the same MIS — both compute the
//!   lexicographically-first MIS of the random rank order. We check, per
//!   trial, that Algorithm 1's output equals the sequential greedy MIS
//!   over decreasing K-rank (Definition 1), and that Algorithm 2's output
//!   equals the sequential greedy over the composite order (K₂-rank, then
//!   base greedy rank, then id). Trials with full-rank ties or base-case
//!   timeouts are excluded and counted separately (they are exactly the
//!   Monte-Carlo failure events).
//! * **Lemma 1 / whp correctness**: the fraction of seeded runs whose
//!   output verifies as an MIS, against the n^{-1}-ish tie bound.

use crate::error::HarnessError;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_fleet::deterministic_map;
use sleepy_graph::GraphFamily;
use sleepy_mis::{depth_alg1, depth_alg2, derive_all, execute_sleeping_mis, MisConfig};
use sleepy_stats::TextTable;
use sleepy_verify::{lexicographically_first_mis, verify_mis};

/// Configuration of the Corollary 1 / whp experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corollary1Config {
    /// Families to test.
    pub families: Vec<GraphFamily>,
    /// Node count per instance.
    pub n: usize,
    /// Trials per family.
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Corollary1Config {
    fn default() -> Self {
        Corollary1Config {
            families: vec![
                GraphFamily::GnpAvgDeg(8.0),
                GraphFamily::RandomRegular(4),
                GraphFamily::GeometricAvgDeg(8.0),
                GraphFamily::BarabasiAlbert(3),
                GraphFamily::Tree,
                GraphFamily::Cycle,
            ],
            n: 1 << 11,
            trials: 25,
            base_seed: 0xC0_0001,
        }
    }
}

/// Per-trial outcome of the equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum TrialOutcome {
    Equal,
    Different,
    SkippedTie,
    SkippedTimeout,
}

/// Per-family equivalence statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EquivalenceStats {
    /// Family label.
    pub family: String,
    /// Trials where the outputs matched exactly.
    pub equal: usize,
    /// Trials where they differed (a genuine counterexample — expected 0).
    pub different: usize,
    /// Trials skipped due to full-rank ties (Monte-Carlo events).
    pub skipped_ties: usize,
    /// Trials skipped due to Algorithm 2 base-case timeouts.
    pub skipped_timeouts: usize,
}

/// Results of experiments C1 and WHP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corollary1Report {
    /// The configuration used.
    pub config: Corollary1Config,
    /// Algorithm 1 vs sequential greedy on decreasing K-rank.
    pub alg1_equivalence: Vec<EquivalenceStats>,
    /// Algorithm 2 vs sequential greedy on the composite order.
    pub alg2_equivalence: Vec<EquivalenceStats>,
    /// Fraction of Algorithm 1 runs that verified as a valid MIS.
    pub alg1_validity_rate: f64,
    /// Fraction of Algorithm 2 runs that verified as a valid MIS.
    pub alg2_validity_rate: f64,
    /// Total runs behind the validity rates.
    pub validity_runs: usize,
}

fn check_family(
    workload: &Workload,
    config: &Corollary1Config,
    alg2: bool,
) -> Result<EquivalenceStats, HarnessError> {
    let seeds: Vec<u64> = (0..config.trials as u64).map(|t| config.base_seed + 31 * t).collect();
    let outcomes = deterministic_map(seeds.len(), 0, |i| -> Result<TrialOutcome, HarnessError> {
        let seed = seeds[i];
        let g = workload.instance(seed)?;
        let n = g.n();
        let coins = derive_all(seed, n);
        let (cfg, k) = if alg2 {
            (MisConfig::alg2(seed), depth_alg2(n))
        } else {
            (MisConfig::alg1(seed), depth_alg1(n))
        };
        // Full-rank ties break the lexicographic argument (Lemma 5's
        // failure event); skip and count them.
        let mut prefix: Vec<u128> = coins.iter().map(|c| c.rank(k)).collect();
        if !alg2 {
            prefix.sort_unstable();
            if prefix.windows(2).any(|w| w[0] == w[1]) {
                return Ok(TrialOutcome::SkippedTie);
            }
        }
        let out = execute_sleeping_mis(&g, cfg)?;
        if out.base_timeout.iter().any(|&t| t) {
            return Ok(TrialOutcome::SkippedTimeout);
        }
        let reference = if alg2 {
            // Composite order: K2-rank, then greedy rank, then id.
            let keys: Vec<(u128, u64, u32)> = (0..n as u32)
                .map(|v| (coins[v as usize].rank(k), coins[v as usize].greedy_rank, v))
                .collect();
            lexicographically_first_mis(&g, &keys)
        } else {
            let keys: Vec<u128> = (0..n).map(|v| coins[v].rank(k)).collect();
            lexicographically_first_mis(&g, &keys)
        };
        Ok(if reference == out.in_mis { TrialOutcome::Equal } else { TrialOutcome::Different })
    })?;
    Ok(EquivalenceStats {
        family: workload.family.label(),
        equal: outcomes.iter().filter(|&&o| o == TrialOutcome::Equal).count(),
        different: outcomes.iter().filter(|&&o| o == TrialOutcome::Different).count(),
        skipped_ties: outcomes.iter().filter(|&&o| o == TrialOutcome::SkippedTie).count(),
        skipped_timeouts: outcomes.iter().filter(|&&o| o == TrialOutcome::SkippedTimeout).count(),
    })
}

/// Runs experiments C1 and WHP.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_corollary1(config: &Corollary1Config) -> Result<Corollary1Report, HarnessError> {
    let mut alg1_equivalence = Vec::new();
    let mut alg2_equivalence = Vec::new();
    let mut valid1 = 0usize;
    let mut valid2 = 0usize;
    let mut runs = 0usize;
    for family in &config.families {
        let workload = Workload::new(*family, config.n);
        alg1_equivalence.push(check_family(&workload, config, false)?);
        alg2_equivalence.push(check_family(&workload, config, true)?);
        // Validity (Lemma 1) over the same trials.
        let seeds: Vec<u64> =
            (0..config.trials as u64).map(|t| config.base_seed + 31 * t).collect();
        let validity =
            deterministic_map(seeds.len(), 0, |i| -> Result<(bool, bool), HarnessError> {
                let seed = seeds[i];
                let g = workload.instance(seed)?;
                let v1 = verify_mis(&g, &execute_sleeping_mis(&g, MisConfig::alg1(seed))?.in_mis)
                    .is_ok();
                let v2 = verify_mis(&g, &execute_sleeping_mis(&g, MisConfig::alg2(seed))?.in_mis)
                    .is_ok();
                Ok((v1, v2))
            })?;
        valid1 += validity.iter().filter(|(a, _)| *a).count();
        valid2 += validity.iter().filter(|(_, b)| *b).count();
        runs += validity.len();
    }
    Ok(Corollary1Report {
        config: config.clone(),
        alg1_equivalence,
        alg2_equivalence,
        alg1_validity_rate: valid1 as f64 / runs.max(1) as f64,
        alg2_validity_rate: valid2 as f64 / runs.max(1) as f64,
        validity_runs: runs,
    })
}

impl Corollary1Report {
    /// Renders the equivalence and validity tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiments C1/WHP — Corollary 1 equivalence and Lemma 1 validity \
             (n = {}, {} trials/family) ==\n\n",
            self.config.n, self.config.trials
        ));
        let table = |stats: &[EquivalenceStats], title: &str| -> String {
            let mut t =
                TextTable::new(vec!["family", "equal", "different", "tie-skips", "timeout-skips"]);
            for s in stats {
                t.row(vec![
                    s.family.clone(),
                    s.equal.to_string(),
                    s.different.to_string(),
                    s.skipped_ties.to_string(),
                    s.skipped_timeouts.to_string(),
                ]);
            }
            format!("{title}\n{}\n", t.render())
        };
        out.push_str(&table(
            &self.alg1_equivalence,
            "-- Corollary 1: Algorithm 1 == sequential greedy on decreasing K-rank --",
        ));
        out.push_str(&table(
            &self.alg2_equivalence,
            "-- Algorithm 2 == sequential greedy on (K2-rank, greedy rank, id) --",
        ));
        out.push_str(&format!(
            "-- Lemma 1 (whp correctness): Algorithm 1 valid in {:.2}% and Algorithm 2 in \
             {:.2}% of {} runs --\n",
            100.0 * self.alg1_validity_rate,
            100.0 * self.alg2_validity_rate,
            self.validity_runs
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary1_equivalence_holds() {
        let cfg = Corollary1Config {
            families: vec![GraphFamily::GnpAvgDeg(6.0), GraphFamily::Cycle],
            n: 256,
            trials: 8,
            base_seed: 77,
        };
        let r = run_corollary1(&cfg).unwrap();
        for s in r.alg1_equivalence.iter().chain(&r.alg2_equivalence) {
            assert_eq!(s.different, 0, "counterexample found in {}", s.family);
            assert!(s.equal > 0, "all trials skipped in {}", s.family);
        }
        assert!(r.alg1_validity_rate > 0.99);
        assert!(r.alg2_validity_rate > 0.99);
        assert!(r.render().contains("Corollary 1"));
    }
}
