//! **Experiments L2 / L3 / L5 / L7 — the paper's quantitative lemmas.**
//!
//! * **Lemma 2**: in every call on node set U, the left recursion has
//!   E\[|L|\] ≤ |U|/2 participants.
//! * **Lemma 3 (Pruning Lemma)**: the right recursion has E\[|R|\] ≤ |U|/4 —
//!   the paper's key technical lemma, proved by deferred decisions.
//! * **Lemma 5**: the probability that two nodes in a common call share a
//!   (k−1)-rank is at most 2n⁻³ per pair (full K-bit rank collisions are
//!   what make the algorithm Monte Carlo).
//! * **Lemma 7**: E\[Z_{K−i}\] ≤ (3/4)^i·n nodes participate at depth i.
//!
//! The harness measures all four on real executions across the standard
//! workload suite.

use crate::error::HarnessError;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_fleet::deterministic_map;
use sleepy_graph::GraphFamily;
use sleepy_mis::{depth_alg1, derive_all, execute_sleeping_mis, MisConfig};
use sleepy_stats::{Summary, TextTable};

/// Configuration for the lemma experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LemmasConfig {
    /// Families to test.
    pub families: Vec<GraphFamily>,
    /// Node count per instance.
    pub n: usize,
    /// Trials per family.
    pub trials: usize,
    /// Only calls with at least this many participants enter the
    /// per-call ratio statistics (tiny calls are pure noise).
    pub min_call_size: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for LemmasConfig {
    fn default() -> Self {
        LemmasConfig {
            families: vec![
                GraphFamily::GnpAvgDeg(8.0),
                GraphFamily::RandomRegular(4),
                GraphFamily::GeometricAvgDeg(8.0),
                GraphFamily::BarabasiAlbert(3),
            ],
            n: 1 << 13,
            trials: 10,
            min_call_size: 32,
            base_seed: 0x1E_337,
        }
    }
}

/// Results of the lemma experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LemmasReport {
    /// The configuration used.
    pub config: LemmasConfig,
    /// Per-family left-recursion ratio statistics (Lemma 2; bound 0.5).
    pub lemma2: Vec<(String, Summary)>,
    /// Per-family right-recursion ratio statistics (Lemma 3; bound 0.25).
    pub lemma3: Vec<(String, Summary)>,
    /// Observed full-rank collision rate over trials vs the union bound
    /// n²/2 · 2^{−K} ≤ 1/(2n) (Lemma 5's collision event).
    pub lemma5_collision_rate: f64,
    /// Lemma 5 union bound for this n.
    pub lemma5_bound: f64,
    /// Depth, mean measured Z, and (3/4)^i·n bound, averaged over all
    /// families (Lemma 7).
    pub lemma7: Vec<(u32, f64, f64)>,
}

/// Runs the lemma experiments.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_lemmas(config: &LemmasConfig) -> Result<LemmasReport, HarnessError> {
    let mut lemma2 = Vec::new();
    let mut lemma3 = Vec::new();
    let depth = depth_alg1(config.n);
    let mut z_acc = vec![0.0f64; depth as usize + 1];
    let mut z_runs = 0usize;
    for family in &config.families {
        let workload = Workload::new(*family, config.n);
        let seeds: Vec<u64> =
            (0..config.trials as u64).map(|t| config.base_seed + t * 7919).collect();
        let outcomes = deterministic_map(seeds.len(), 0, |i| -> Result<_, HarnessError> {
            let seed = seeds[i];
            let g = workload.instance(seed)?;
            Ok(execute_sleeping_mis(&g, MisConfig::alg1(seed))?)
        })?;
        let mut left_ratios = Vec::new();
        let mut right_ratios = Vec::new();
        for out in &outcomes {
            for c in out
                .tree
                .calls
                .iter()
                .filter(|c| !c.is_base && c.participants >= config.min_call_size)
            {
                left_ratios.push(c.left_participants as f64 / c.participants as f64);
                right_ratios.push(c.right_participants as f64 / c.participants as f64);
            }
            for (d, z) in out.tree.z_profile().iter().enumerate() {
                z_acc[d] += *z as f64;
            }
            z_runs += 1;
        }
        lemma2.push((family.label(), Summary::of(&left_ratios)));
        lemma3.push((family.label(), Summary::of(&right_ratios)));
    }
    // Lemma 5: full-rank collision rate across independent coin draws.
    let collision_trials = (config.trials * config.families.len()).max(100);
    let k = depth_alg1(config.n);
    let mut collisions = 0usize;
    for t in 0..collision_trials as u64 {
        let coins = derive_all(config.base_seed ^ (t.wrapping_mul(0xABCD_1234)), config.n);
        let mut ranks: Vec<u128> = coins.iter().map(|c| c.rank(k)).collect();
        ranks.sort_unstable();
        if ranks.windows(2).any(|w| w[0] == w[1]) {
            collisions += 1;
        }
    }
    let lemma7 = z_acc
        .iter()
        .enumerate()
        .map(|(d, z)| {
            (d as u32, z / z_runs.max(1) as f64, 0.75f64.powi(d as i32) * config.n as f64)
        })
        .collect();
    Ok(LemmasReport {
        config: config.clone(),
        lemma2,
        lemma3,
        lemma5_collision_rate: collisions as f64 / collision_trials as f64,
        lemma5_bound: (config.n as f64) * (config.n as f64) / 2.0 * 0.5f64.powi(k as i32),
        lemma7,
    })
}

impl LemmasReport {
    /// Renders all four lemma validations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiments L2/L3/L5/L7 — lemma validation (n = {}, {} trials/family) ==\n\n",
            self.config.n, self.config.trials
        ));
        let ratio_table = |rows: &[(String, Summary)], bound: f64, title: &str| -> String {
            let mut t = TextTable::new(vec!["family", "mean ratio", "max", "bound", "holds"]);
            for (fam, s) in rows {
                t.row(vec![
                    fam.clone(),
                    format!("{:.4}", s.mean),
                    format!("{:.4}", s.max),
                    format!("{bound}"),
                    if s.mean <= bound { "yes".into() } else { "NO".into() },
                ]);
            }
            format!("{title}\n{}\n", t.render())
        };
        out.push_str(&ratio_table(
            &self.lemma2,
            0.5,
            "-- Lemma 2: E[|L|]/|U| <= 1/2 (calls with |U| >= min size) --",
        ));
        out.push_str(&ratio_table(
            &self.lemma3,
            0.25,
            "-- Lemma 3 (Pruning Lemma): E[|R|]/|U| <= 1/4 --",
        ));
        out.push_str(&format!(
            "-- Lemma 5: full-rank collision rate {:.4} vs union bound {:.4} --\n\n",
            self.lemma5_collision_rate, self.lemma5_bound
        ));
        let mut t = TextTable::new(vec!["depth i", "mean Z_{K-i}", "(3/4)^i * n", "within"]);
        for &(d, z, bound) in self.lemma7.iter().take(16) {
            t.row(vec![
                d.to_string(),
                format!("{z:.1}"),
                format!("{bound:.1}"),
                if z <= bound * 1.05 { "yes".into() } else { "NO".into() },
            ]);
        }
        out.push_str("-- Lemma 7: E[Z_{K-i}] <= (3/4)^i * n (first 16 depths) --\n");
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LemmasConfig {
        LemmasConfig {
            families: vec![GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
            n: 1 << 10,
            trials: 4,
            min_call_size: 24,
            base_seed: 3,
        }
    }

    #[test]
    fn lemma_bounds_hold_empirically() {
        let r = run_lemmas(&small()).unwrap();
        for (fam, s) in &r.lemma2 {
            assert!(s.mean <= 0.52, "Lemma 2 violated on {fam}: {}", s.mean);
        }
        for (fam, s) in &r.lemma3 {
            assert!(s.mean <= 0.26, "Lemma 3 violated on {fam}: {}", s.mean);
        }
        // Lemma 7 at the root is exactly n.
        assert!((r.lemma7[0].1 - 1024.0).abs() < 1e-9);
        // Collision rate within a couple of times the bound.
        assert!(r.lemma5_collision_rate <= (r.lemma5_bound * 3.0).max(0.05));
        assert!(r.render().contains("Pruning"));
    }
}
