//! Report output: writes rendered text and JSON into `results/`.

use crate::error::HarnessError;
use std::path::{Path, PathBuf};

/// Writes `text` to `results/<name>.txt` and `json` to
/// `results/<name>.json` under `dir`, creating the directory if needed.
/// Returns the text path.
///
/// # Errors
///
/// I/O failures ([`HarnessError::Io`]).
pub fn save_report(
    dir: &Path,
    name: &str,
    text: &str,
    json: &serde_json::Value,
) -> Result<PathBuf, HarnessError> {
    std::fs::create_dir_all(dir)?;
    let txt_path = dir.join(format!("{name}.txt"));
    std::fs::write(&txt_path, text)?;
    let json_path = dir.join(format!("{name}.json"));
    std::fs::write(&json_path, serde_json::to_string_pretty(json).expect("serializable"))?;
    Ok(txt_path)
}

/// The default results directory: `results/` under the current directory.
pub fn default_results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Whether `--quick` was passed on the command line (smaller experiment
/// configurations for smoke runs).
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_report_round_trip() {
        let dir = std::env::temp_dir().join(format!("sleepy-test-{}", std::process::id()));
        let path = save_report(&dir, "unit", "hello", &serde_json::json!({"x": 1})).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "hello");
        let json = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(json.contains("\"x\": 1"));
        std::fs::remove_dir_all(dir).ok();
    }
}
