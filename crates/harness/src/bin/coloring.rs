//! The §1.5 contrast experiment (CO): (Δ+1)-coloring is O(1) node-averaged
//! in the traditional model; MIS is not known to be.

#![forbid(unsafe_code)]

use sleepy_harness::coloring::{run_coloring, ColoringConfig};
use sleepy_harness::output::{default_results_dir, quick_flag, save_report};

fn main() {
    let mut config = ColoringConfig::default();
    if quick_flag() {
        config.sizes = vec![128, 512];
        config.trials = 3;
    }
    match run_coloring(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "coloring", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("coloring failed: {e}");
            std::process::exit(1);
        }
    }
}
