//! Regenerates the paper's Figure 2 (experiment F2): the truncated
//! recursion tree of Algorithm 2 vs Algorithm 1's full tree, with measured
//! level occupancies against Lemma 7's (3/4)^i·n envelope.

#![forbid(unsafe_code)]

use sleepy_harness::figure2::{run_figure2, Figure2Config};
use sleepy_harness::output::{default_results_dir, quick_flag, save_report};

fn main() {
    let mut config = Figure2Config::default();
    if quick_flag() {
        config.n = 1 << 11;
        config.trials = 3;
    }
    match run_figure2(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "figure2", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("figure2 failed: {e}");
            std::process::exit(1);
        }
    }
}
