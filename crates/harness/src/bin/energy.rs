//! Measures the sensor-network energy savings motivating the sleeping
//! model (experiment EN).

#![forbid(unsafe_code)]

use sleepy_harness::energy::{run_energy, EnergyConfig};
use sleepy_harness::output::{default_results_dir, quick_flag, save_report};

fn main() {
    let mut config = EnergyConfig::default();
    if quick_flag() {
        config.sizes = vec![128, 256];
        config.trials = 2;
    }
    match run_energy(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "energy", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("energy failed: {e}");
            std::process::exit(1);
        }
    }
}
