//! Measures MIS repair vs recomputation under seeded graph churn
//! (experiment CH).

#![forbid(unsafe_code)]

use sleepy_harness::churn::{run_churn, ChurnConfig};
use sleepy_harness::output::{default_results_dir, quick_flag, save_report};

fn main() {
    let mut config = ChurnConfig::default();
    if quick_flag() {
        config.n = 256;
        config.phases = 4;
        config.trials = 3;
    }
    match run_churn(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "churn", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("churn failed: {e}");
            std::process::exit(1);
        }
    }
}
