//! Verifies Corollary 1 (lexicographically-first MIS equivalence) and the
//! Lemma 1 whp-correctness rate (experiments C1/WHP).

#![forbid(unsafe_code)]

use sleepy_harness::corollary1::{run_corollary1, Corollary1Config};
use sleepy_harness::output::{default_results_dir, quick_flag, save_report};

fn main() {
    let mut config = Corollary1Config::default();
    if quick_flag() {
        config.n = 512;
        config.trials = 10;
    }
    match run_corollary1(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "corollary1", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
            let counterexamples: usize = report
                .alg1_equivalence
                .iter()
                .chain(&report.alg2_equivalence)
                .map(|s| s.different)
                .sum();
            if counterexamples > 0 {
                eprintln!("COUNTEREXAMPLE to Corollary 1 found — see report");
                std::process::exit(2);
            }
        }
        Err(e) => {
            eprintln!("corollary1 failed: {e}");
            std::process::exit(1);
        }
    }
}
