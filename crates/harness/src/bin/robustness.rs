//! Robustness under injected message loss (experiment RB, beyond the
//! paper): how output quality degrades when the reliable-links assumption
//! is relaxed.

#![forbid(unsafe_code)]

use sleepy_harness::output::{default_results_dir, quick_flag, save_report};
use sleepy_harness::robustness::{run_robustness, RobustnessConfig};

fn main() {
    let mut config = RobustnessConfig::default();
    if quick_flag() {
        config.n = 96;
        config.trials = 4;
        config.loss_probabilities = vec![0.0, 0.01, 0.05];
    }
    match run_robustness(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "robustness", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("robustness failed: {e}");
            std::process::exit(1);
        }
    }
}
