//! Runs every experiment of the reproduction in sequence (T1, F1, F2,
//! L2/L3/L5/L7, TH1/TH2, C1/WHP, EN, AB, CO, RB, CH, AW), writing all
//! reports into `results/`. Pass `--quick` for a fast smoke run of the
//! full pipeline.

#![forbid(unsafe_code)]

use sleepy_harness::output::{default_results_dir, quick_flag, save_report};
use sleepy_harness::{
    ablation, awake_timeline, churn, coloring, corollary1, energy, figure1, figure2, lemmas,
    robustness, table1, theorems,
};

fn main() {
    let quick = quick_flag();
    let dir = default_results_dir();
    let mut failures = 0usize;

    macro_rules! experiment {
        ($name:literal, $run:expr) => {
            println!("\n################ {} ################", $name);
            match $run {
                Ok((text, json)) => {
                    println!("{text}");
                    if let Err(e) = save_report(&dir, $name, &text, &json) {
                        eprintln!("warning: could not save {}: {e}", $name);
                    }
                }
                Err(e) => {
                    eprintln!("{} FAILED: {e}", $name);
                    failures += 1;
                }
            }
        };
    }

    experiment!("table1", {
        let mut cfg = table1::Table1Config::default();
        if quick {
            cfg.sizes = vec![128, 256, 512];
            cfg.trials = 3;
        }
        table1::run_table1(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("figure1", {
        figure1::run_figure1()
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("figure2", {
        let mut cfg = figure2::Figure2Config::default();
        if quick {
            cfg.n = 1 << 11;
            cfg.trials = 3;
        }
        figure2::run_figure2(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("lemmas", {
        let mut cfg = lemmas::LemmasConfig::default();
        if quick {
            cfg.n = 1 << 10;
            cfg.trials = 4;
        }
        lemmas::run_lemmas(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("theorems", {
        let mut cfg = theorems::TheoremsConfig::default();
        if quick {
            cfg.size_exponents = (7..=12).collect();
            cfg.trials = 3;
        }
        theorems::run_theorems(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("corollary1", {
        let mut cfg = corollary1::Corollary1Config::default();
        if quick {
            cfg.n = 512;
            cfg.trials = 10;
        }
        corollary1::run_corollary1(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("energy", {
        let mut cfg = energy::EnergyConfig::default();
        if quick {
            cfg.sizes = vec![128, 256];
            cfg.trials = 2;
        }
        energy::run_energy(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("ablation", {
        let mut cfg = ablation::AblationConfig::default();
        if quick {
            cfg.n = 512;
            cfg.trials = 4;
            cfg.greedy_cs = vec![0.25, 1.0, 4.0];
        }
        ablation::run_ablation(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("coloring", {
        let mut cfg = coloring::ColoringConfig::default();
        if quick {
            cfg.sizes = vec![128, 512];
            cfg.trials = 3;
        }
        coloring::run_coloring(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("robustness", {
        let mut cfg = robustness::RobustnessConfig::default();
        if quick {
            cfg.n = 96;
            cfg.trials = 4;
            cfg.loss_probabilities = vec![0.0, 0.01, 0.05];
        }
        robustness::run_robustness(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("churn", {
        let mut cfg = churn::ChurnConfig::default();
        if quick {
            cfg.n = 256;
            cfg.phases = 4;
            cfg.trials = 3;
        }
        churn::run_churn(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });
    experiment!("awake_timeline", {
        let mut cfg = awake_timeline::AwakeTimelineConfig::default();
        if quick {
            cfg.n = 256;
            cfg.trials = 3;
        }
        awake_timeline::run_awake_timeline(&cfg)
            .map(|r| (r.render(), serde_json::to_value(&r).expect("serializable")))
    });

    println!("\n################ summary ################");
    if failures == 0 {
        println!("all experiments completed; reports in {}", dir.display());
    } else {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
