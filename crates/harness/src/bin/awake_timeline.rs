//! Runs experiment AW: per-round awake fractions for every algorithm,
//! recorded through the protocol flight recorder and cross-checked by
//! the schedule validators. The sleeping algorithms' curves integrate
//! to the paper's O(1) node-averaged awake complexity.

#![forbid(unsafe_code)]

use sleepy_harness::awake_timeline::{run_awake_timeline, AwakeTimelineConfig};
use sleepy_harness::output::{default_results_dir, quick_flag, save_report};

fn main() {
    let mut config = AwakeTimelineConfig::default();
    if quick_flag() {
        config.n = 256;
        config.trials = 3;
    }
    match run_awake_timeline(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "awake_timeline", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("awake-timeline failed: {e}");
            std::process::exit(1);
        }
    }
}
