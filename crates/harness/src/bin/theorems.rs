//! Measures the scaling claims of Theorems 1 and 2 (experiments TH1/TH2).

#![forbid(unsafe_code)]

use sleepy_harness::output::{default_results_dir, quick_flag, save_report};
use sleepy_harness::theorems::{run_theorems, TheoremsConfig};

fn main() {
    let mut config = TheoremsConfig::default();
    if quick_flag() {
        config.size_exponents = (7..=12).collect();
        config.trials = 3;
    }
    match run_theorems(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "theorems", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("theorems failed: {e}");
            std::process::exit(1);
        }
    }
}
