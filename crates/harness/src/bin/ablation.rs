//! Ablation sweeps of the paper's fixed design knobs (experiment AB):
//! Algorithm 2's greedy budget constant c and the recursion truncation
//! depth.

#![forbid(unsafe_code)]

use sleepy_harness::ablation::{run_ablation, AblationConfig};
use sleepy_harness::output::{default_results_dir, quick_flag, save_report};

fn main() {
    let mut config = AblationConfig::default();
    if quick_flag() {
        config.n = 512;
        config.trials = 4;
        config.greedy_cs = vec![0.25, 1.0, 4.0];
    }
    match run_ablation(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "ablation", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
