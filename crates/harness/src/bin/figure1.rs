//! Regenerates the paper's Figure 1 (experiment F1): the recursion-tree
//! timing labels, exactly as printed in the paper.

#![forbid(unsafe_code)]

use sleepy_harness::figure1::run_figure1;
use sleepy_harness::output::{default_results_dir, save_report};

fn main() {
    match run_figure1() {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "figure1", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
            if !report.labels_match_paper {
                std::process::exit(2);
            }
        }
        Err(e) => {
            eprintln!("figure1 failed: {e}");
            std::process::exit(1);
        }
    }
}
