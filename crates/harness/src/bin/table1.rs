//! Regenerates the paper's Table 1 (experiment T1). `--quick` shrinks the
//! sweep for smoke runs.

#![forbid(unsafe_code)]

use sleepy_harness::output::{default_results_dir, quick_flag, save_report};
use sleepy_harness::table1::{run_table1, Table1Config};

fn main() {
    let mut config = Table1Config::default();
    if quick_flag() {
        config.sizes = vec![128, 256, 512];
        config.trials = 3;
    }
    match run_table1(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "table1", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
