//! Empirically validates Lemmas 2, 3 (Pruning), 5 and 7 (experiments
//! L2/L3/L5/L7).

#![forbid(unsafe_code)]

use sleepy_harness::lemmas::{run_lemmas, LemmasConfig};
use sleepy_harness::output::{default_results_dir, quick_flag, save_report};

fn main() {
    let mut config = LemmasConfig::default();
    if quick_flag() {
        config.n = 1 << 10;
        config.trials = 4;
    }
    match run_lemmas(&config) {
        Ok(report) => {
            let text = report.render();
            println!("{text}");
            let json = serde_json::to_value(&report).expect("serializable report");
            match save_report(&default_results_dir(), "lemmas", &text, &json) {
                Ok(path) => println!("(written to {})", path.display()),
                Err(e) => eprintln!("warning: could not save report: {e}"),
            }
        }
        Err(e) => {
            eprintln!("lemmas failed: {e}");
            std::process::exit(1);
        }
    }
}
