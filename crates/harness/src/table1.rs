//! **Experiment T1 — Table 1 of the paper.**
//!
//! The paper's Table 1 compares four complexity measures across prior MIS
//! algorithms and the two sleeping algorithms:
//!
//! | measure | prior (Luby, CRT, …) | Algorithm 1 | Algorithm 2 |
//! |---------|----------------------|-------------|-------------|
//! | node-averaged awake | n/a (always awake) | O(1) | O(1) |
//! | worst-case awake    | n/a                | O(log n) | O(log n) |
//! | worst-case round    | O(log n)           | O(n³) | O(log^3.41 n) |
//! | node-averaged round | O(log n) best known | O(n³) | O(log^3.41 n) |
//!
//! This experiment *measures* all four quantities for all six implemented
//! algorithms over an n-sweep, fits growth shapes, and renders both the raw
//! sweep and a Table-1-shaped summary. For the always-awake baselines the
//! awake measures coincide with the round measures — the "not applicable"
//! entries of the paper become "equals the round complexity" here.

use crate::error::HarnessError;
use crate::measure::{aggregate_measurement, AggregateMeasurement, Execution, ALL_ALGOS};
use serde::{Deserialize, Serialize};
use sleepy_fleet::{run_plan, FleetConfig, TrialPlan};
use sleepy_graph::GraphFamily;
use sleepy_stats::{fit_power, TextTable};

/// Configuration of the Table 1 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Config {
    /// Graph family to sweep (one family per invocation keeps the table
    /// readable; the binary loops over the standard suite).
    pub family: GraphFamily,
    /// Node counts (powers of two keep ⌈3·log₂ n⌉ smooth).
    pub sizes: Vec<usize>,
    /// Trials per (algorithm, size).
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            family: GraphFamily::GnpAvgDeg(8.0),
            sizes: vec![128, 256, 512, 1024, 2048, 4096],
            trials: 5,
            base_seed: 0x7AB1E1,
        }
    }
}

/// Results of the Table 1 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Report {
    /// The configuration used.
    pub config: Table1Config,
    /// One aggregate per (algorithm, size).
    pub cells: Vec<AggregateMeasurement>,
    /// Fitted n-exponents per algorithm for each of the four measures
    /// (algo, avg-awake, worst-awake, worst-round, avg-round).
    pub shape_fits: Vec<ShapeFit>,
}

/// Fitted polynomial exponents (f ≈ a·n^b) of the four measures for one
/// algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShapeFit {
    /// Algorithm label.
    pub algo: String,
    /// Exponent of node-averaged awake complexity (paper: ≈ 0 for the
    /// sleeping algorithms).
    pub node_avg_awake_exp: f64,
    /// Exponent of worst-case awake complexity (paper: ≈ 0, log growth).
    pub worst_awake_exp: f64,
    /// Exponent of worst-case round complexity (paper: ≈ 3 for
    /// Algorithm 1, ≈ 0 polylog for Algorithm 2 and the baselines).
    pub worst_round_exp: f64,
    /// Exponent of node-averaged round complexity.
    pub node_avg_round_exp: f64,
}

/// Runs experiment T1.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_table1(config: &Table1Config) -> Result<Table1Report, HarnessError> {
    // One declarative plan for the whole sweep: every (size, algorithm)
    // cell is a fleet job, executed together on the worker pool.
    let plan = TrialPlan::sweep(
        &[config.family],
        &config.sizes,
        &ALL_ALGOS,
        config.trials,
        config.base_seed,
        Execution::Auto,
    );
    let out = run_plan(&plan, &FleetConfig::default())?;
    let cells: Vec<AggregateMeasurement> = plan
        .jobs
        .iter()
        .zip(&out.aggregates)
        .map(|(job, agg)| aggregate_measurement(&job.workload, job.algo, agg))
        .collect();
    let mut shape_fits = Vec::new();
    for algo in ALL_ALGOS {
        let mine: Vec<&AggregateMeasurement> =
            cells.iter().filter(|c| c.algo == algo.to_string()).collect();
        if mine.len() < 2 {
            continue;
        }
        let ns: Vec<f64> = mine.iter().map(|c| c.n as f64).collect();
        let fit = |f: &dyn Fn(&AggregateMeasurement) -> f64| {
            fit_power(&ns, &mine.iter().map(|c| f(c)).collect::<Vec<_>>()).exponent
        };
        shape_fits.push(ShapeFit {
            algo: algo.to_string(),
            node_avg_awake_exp: fit(&|c| c.node_avg_awake.mean),
            worst_awake_exp: fit(&|c| c.worst_awake.mean),
            worst_round_exp: fit(&|c| c.worst_round.mean),
            node_avg_round_exp: fit(&|c| c.node_avg_round.mean),
        });
    }
    Ok(Table1Report { config: config.clone(), cells, shape_fits })
}

impl Table1Report {
    /// Renders the raw sweep and the Table-1-shaped summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiment T1 (Table 1) — family {}, {} trials per cell ==\n\n",
            self.config.family, self.config.trials
        ));
        let mut sweep = TextTable::new(vec![
            "algorithm",
            "n",
            "avg awake",
            "worst awake",
            "worst round",
            "avg round",
            "valid",
        ]);
        for c in &self.cells {
            sweep.row(vec![
                c.algo.clone(),
                c.n.to_string(),
                format!("{:.2} ±{:.2}", c.node_avg_awake.mean, c.node_avg_awake.ci95_half_width()),
                format!("{:.1}", c.worst_awake.mean),
                format!("{:.0}", c.worst_round.mean),
                format!("{:.1}", c.node_avg_round.mean),
                format!("{:.0}%", 100.0 * c.valid_fraction),
            ]);
        }
        out.push_str(&sweep.render());
        out.push_str(
            "\n-- Table 1 shape summary (fitted n-exponents; paper's claims in brackets) --\n",
        );
        let mut shape = TextTable::new(vec![
            "measure",
            "Luby/CRT/Ghaffari (paper: n/a | O(log n))",
            "SleepingMIS (paper: O(1)|O(log n)|O(n^3)|O(n^3))",
            "Fast-SleepingMIS (paper: O(1)|O(log n)|O(log^3.41 n)|O(log^3.41 n))",
        ]);
        let baseline_mean = |f: &dyn Fn(&ShapeFit) -> f64| -> f64 {
            let b: Vec<f64> =
                self.shape_fits.iter().filter(|s| !s.algo.contains("Sleeping")).map(f).collect();
            b.iter().sum::<f64>() / b.len().max(1) as f64
        };
        let find = |name: &str| self.shape_fits.iter().find(|s| s.algo == name);
        type ShapeCol = Box<dyn Fn(&ShapeFit) -> f64>;
        let rows: [(&str, ShapeCol); 4] = [
            ("node-avg awake  n-exp", Box::new(|s: &ShapeFit| s.node_avg_awake_exp)),
            ("worst awake     n-exp", Box::new(|s: &ShapeFit| s.worst_awake_exp)),
            ("worst round     n-exp", Box::new(|s: &ShapeFit| s.worst_round_exp)),
            ("node-avg round  n-exp", Box::new(|s: &ShapeFit| s.node_avg_round_exp)),
        ];
        for (label, f) in &rows {
            shape.row(vec![
                label.to_string(),
                format!("{:.3}", baseline_mean(f)),
                find("SleepingMIS").map(|s| format!("{:.3}", f(s))).unwrap_or_default(),
                find("Fast-SleepingMIS").map(|s| format!("{:.3}", f(s))).unwrap_or_default(),
            ]);
        }
        out.push_str(&shape.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Table1Config {
        Table1Config {
            family: GraphFamily::GnpAvgDeg(6.0),
            sizes: vec![64, 128, 256],
            trials: 2,
            base_seed: 7,
        }
    }

    #[test]
    fn table1_runs_and_renders() {
        let report = run_table1(&small_config()).unwrap();
        assert_eq!(report.cells.len(), 3 * ALL_ALGOS.len());
        assert_eq!(report.shape_fits.len(), ALL_ALGOS.len());
        let text = report.render();
        assert!(text.contains("SleepingMIS"));
        assert!(text.contains("Luby-B"));
        assert!(text.contains("shape summary"));
    }

    #[test]
    fn sleeping_algorithms_have_flat_awake_growth() {
        // Even on a small sweep, the awake exponent of the sleeping
        // algorithms must be far below the baselines' (which grow with
        // log n, i.e. a small positive n-exponent).
        let report = run_table1(&small_config()).unwrap();
        let alg1 = report.shape_fits.iter().find(|s| s.algo == "SleepingMIS").unwrap();
        assert!(
            alg1.node_avg_awake_exp.abs() < 0.25,
            "avg awake exponent {}",
            alg1.node_avg_awake_exp
        );
        // Worst-case rounds of Algorithm 1 grow polynomially (exponent
        // near 3, with ceil-induced jitter).
        assert!(alg1.worst_round_exp > 1.8, "worst round exp {}", alg1.worst_round_exp);
    }
}
