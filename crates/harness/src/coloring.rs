//! **Experiment CO — the §1.5 coloring contrast.**
//!
//! The paper notes (§1.5, citing Barenboim–Tzur §6.2) that
//! *(Δ+1)-coloring* can be solved with **O(1) node-averaged round
//! complexity in the traditional model** using Luby's coloring algorithm —
//! a constant fraction of undecided nodes finalizes per phase — "however,
//! this does not imply any such bound for MIS". That asymmetry between
//! coloring and MIS is the opening for the sleeping model.
//!
//! This experiment measures Luby coloring's node-averaged round complexity
//! across an n-sweep (expected: flat) next to the sleeping algorithms'
//! node-averaged *awake* complexity (also flat) and the MIS baselines'
//! node-averaged rounds, making the paper's comparison table §1.5
//! concrete.

use crate::error::HarnessError;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_baselines::{run_baseline, BaselineKind, LubyColoring};
use sleepy_fleet::deterministic_map;
use sleepy_graph::GraphFamily;
use sleepy_mis::{execute_sleeping_mis, MisConfig};
use sleepy_net::{run_protocol, EngineConfig};
use sleepy_stats::{fit_power, TextTable};
use sleepy_verify::verify_coloring;

/// Configuration of the coloring-contrast experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColoringConfig {
    /// Graph family.
    pub family: GraphFamily,
    /// Node counts to sweep.
    pub sizes: Vec<usize>,
    /// Trials per size.
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for ColoringConfig {
    fn default() -> Self {
        ColoringConfig {
            family: GraphFamily::GnpAvgDeg(8.0),
            sizes: vec![256, 512, 1024, 2048, 4096],
            trials: 5,
            base_seed: 0xC0105,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColoringRow {
    /// Node count.
    pub n: usize,
    /// Luby coloring: mean node-averaged round complexity (traditional
    /// model; claim: flat).
    pub coloring_avg_round: f64,
    /// Luby coloring: all runs verified as proper (Δ+1)-colorings.
    pub coloring_valid: bool,
    /// SleepingMIS: mean node-averaged awake complexity (flat).
    pub mis_alg1_avg_awake: f64,
    /// Luby-B MIS: mean node-averaged round complexity.
    pub mis_luby_avg_round: f64,
}

/// Results of experiment CO.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColoringReport {
    /// The configuration used.
    pub config: ColoringConfig,
    /// The sweep.
    pub rows: Vec<ColoringRow>,
    /// Fitted n-exponent of coloring's node-averaged rounds (claim ≈ 0).
    pub coloring_exponent: f64,
}

/// Runs experiment CO.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_coloring(config: &ColoringConfig) -> Result<ColoringReport, HarnessError> {
    let mut rows = Vec::new();
    for &n in &config.sizes {
        let workload = Workload::new(config.family, n);
        let seeds: Vec<u64> =
            (0..config.trials as u64).map(|t| config.base_seed + 17 * t).collect();
        let trials = deterministic_map(seeds.len(), 0, |i| -> Result<_, HarnessError> {
            let seed = seeds[i];
            let g = workload.instance(seed)?;
            let run =
                run_protocol(&g, &EngineConfig::default(), |id, _| LubyColoring::new(id, seed))?;
            let colors: Vec<u32> = run.outputs.iter().map(|c| c.expect("all colored")).collect();
            let valid = verify_coloring(&g, &colors).is_ok();
            let coloring_avg = run.metrics.summary().node_avg_round;
            let mis1 = execute_sleeping_mis(&g, MisConfig::alg1(seed))?;
            let luby = run_baseline(&g, BaselineKind::LubyB, seed, &EngineConfig::default())?;
            Ok((
                coloring_avg,
                valid,
                mis1.summary().node_avg_awake,
                luby.metrics.summary().node_avg_round,
            ))
        })?;
        type ColoringObs = (f64, bool, f64, f64);
        let mean = |f: &dyn Fn(&ColoringObs) -> f64| {
            trials.iter().map(f).sum::<f64>() / trials.len() as f64
        };
        rows.push(ColoringRow {
            n,
            coloring_avg_round: mean(&|t| t.0),
            coloring_valid: trials.iter().all(|t| t.1),
            mis_alg1_avg_awake: mean(&|t| t.2),
            mis_luby_avg_round: mean(&|t| t.3),
        });
    }
    let ns: Vec<f64> = rows.iter().map(|r| r.n as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.coloring_avg_round).collect();
    let coloring_exponent = fit_power(&ns, &ys).exponent;
    Ok(ColoringReport { config: config.clone(), rows, coloring_exponent })
}

impl ColoringReport {
    /// Renders the contrast table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiment CO — §1.5 contrast: (Δ+1)-coloring vs MIS (family {}) ==\n\n",
            self.config.family
        ));
        let mut t = TextTable::new(vec![
            "n",
            "coloring avg round (traditional)",
            "SleepingMIS avg awake (sleeping)",
            "Luby-B MIS avg round",
            "coloring valid",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                format!("{:.2}", r.coloring_avg_round),
                format!("{:.2}", r.mis_alg1_avg_awake),
                format!("{:.2}", r.mis_luby_avg_round),
                if r.coloring_valid { "yes".into() } else { "NO".into() },
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nfitted n-exponent of coloring's node-averaged rounds: {:.3} (paper's §1.5: \
             O(1) in the traditional model — no sleeping needed for coloring; the open \
             problem is MIS).\n",
            self.coloring_exponent
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coloring_contrast_runs() {
        let cfg = ColoringConfig {
            family: GraphFamily::GnpAvgDeg(6.0),
            sizes: vec![128, 512],
            trials: 3,
            base_seed: 2,
        };
        let r = run_coloring(&cfg).unwrap();
        assert!(r.rows.iter().all(|row| row.coloring_valid));
        // Flat node-averaged rounds for coloring.
        assert!(r.coloring_exponent.abs() < 0.25, "exponent {}", r.coloring_exponent);
        assert!(r.rows[0].coloring_avg_round < 12.0);
        assert!(r.render().contains("coloring"));
    }
}
