//! **Experiment F2 — Figure 2 of the paper.**
//!
//! Figure 2 contrasts the recursion trees of the two algorithms: Algorithm
//! 1 recurses to depth K = c·log n (base case = single nodes whp), while
//! Algorithm 2 truncates at depth ℓ·log log n and solves each base case
//! with the randomized greedy algorithm. The figure's quantitative content
//! is:
//!
//! * the tree depths (c·log n vs ℓ·log log n),
//! * the number of leaves (2^depth; for Algorithm 2, (log n)^ℓ),
//! * the expected number of nodes surviving to depth i, (3/4)^i·n
//!   (Lemma 7), and in particular n/log n at Algorithm 2's base level
//!   (Lemma 12's key step).
//!
//! This experiment measures all of these on real executions and compares
//! them to the predictions.

use crate::error::HarnessError;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_fleet::deterministic_map;
use sleepy_graph::GraphFamily;
use sleepy_mis::{depth_alg1, depth_alg2, execute_sleeping_mis, MisConfig};
use sleepy_stats::TextTable;

/// Configuration of experiment F2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2Config {
    /// Graph family.
    pub family: GraphFamily,
    /// Node count for the depth-profile run.
    pub n: usize,
    /// Trials to average level occupancies over.
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Figure2Config {
    fn default() -> Self {
        Figure2Config {
            family: GraphFamily::GnpAvgDeg(8.0),
            n: 1 << 14,
            trials: 5,
            base_seed: 0xF2,
        }
    }
}

/// Per-depth occupancy of the recursion tree, measured vs predicted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelOccupancy {
    /// Depth below the root.
    pub depth: u32,
    /// Mean measured participants at this depth (Z_{K−depth}).
    pub measured: f64,
    /// Lemma 7's envelope (3/4)^depth·n.
    pub predicted_bound: f64,
}

/// Results of experiment F2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2Report {
    /// The configuration used.
    pub config: Figure2Config,
    /// Algorithm 1 recursion depth K = ⌈3·log₂ n⌉.
    pub alg1_depth: u32,
    /// Algorithm 2 recursion depth ⌈ℓ·log₂log₂ n⌉.
    pub alg2_depth: u32,
    /// Measured vs predicted occupancy per depth, Algorithm 1.
    pub alg1_levels: Vec<LevelOccupancy>,
    /// Measured vs predicted occupancy per depth, Algorithm 2.
    pub alg2_levels: Vec<LevelOccupancy>,
    /// Mean number of non-empty Algorithm 2 base-case instances.
    pub alg2_base_instances: f64,
    /// Mean total participants across Algorithm 2 base cases.
    pub alg2_base_population: f64,
    /// Lemma 12's predicted base population n/log₂ n.
    pub alg2_base_population_predicted: f64,
}

/// Runs experiment F2.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_figure2(config: &Figure2Config) -> Result<Figure2Report, HarnessError> {
    let workload = Workload::new(config.family, config.n);
    let alg1_depth = depth_alg1(config.n);
    let alg2_depth = depth_alg2(config.n);
    // Trials execute in parallel on the fleet pool; the per-trial
    // profiles come back in trial order and are reduced sequentially, so
    // the report is deterministic regardless of thread count.
    type TrialProfile = (Vec<u64>, Vec<u64>, u64, u64);
    let per_trial =
        deterministic_map(config.trials, 0, |t| -> Result<TrialProfile, HarnessError> {
            let seed = config.base_seed.wrapping_add(t as u64 * 0x9E37);
            let g = workload.instance(seed)?;
            let out1 = execute_sleeping_mis(&g, MisConfig::alg1(seed))?;
            let out2 = execute_sleeping_mis(&g, MisConfig::alg2(seed))?;
            let (instances, pop) = out2.tree.base_case_load();
            Ok((out1.tree.z_profile(), out2.tree.z_profile(), instances as u64, pop))
        })?;
    let mut alg1_z = vec![0.0f64; alg1_depth as usize + 1];
    let mut alg2_z = vec![0.0f64; alg2_depth as usize + 1];
    let mut base_instances = 0.0;
    let mut base_population = 0.0;
    for (z1, z2, instances, pop) in &per_trial {
        for (d, z) in z1.iter().enumerate() {
            alg1_z[d] += *z as f64;
        }
        for (d, z) in z2.iter().enumerate() {
            alg2_z[d] += *z as f64;
        }
        base_instances += *instances as f64;
        base_population += *pop as f64;
    }
    let trials = config.trials as f64;
    let to_levels = |zs: &[f64]| -> Vec<LevelOccupancy> {
        zs.iter()
            .enumerate()
            .map(|(d, z)| LevelOccupancy {
                depth: d as u32,
                measured: z / trials,
                predicted_bound: 0.75f64.powi(d as i32) * config.n as f64,
            })
            .collect()
    };
    Ok(Figure2Report {
        config: config.clone(),
        alg1_depth,
        alg2_depth,
        alg1_levels: to_levels(&alg1_z),
        alg2_levels: to_levels(&alg2_z),
        alg2_base_instances: base_instances / trials,
        alg2_base_population: base_population / trials,
        alg2_base_population_predicted: config.n as f64 / (config.n as f64).log2(),
    })
}

impl Figure2Report {
    /// Renders the depth comparison and occupancy profiles.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let n = self.config.n;
        out.push_str(&format!("== Experiment F2 (Figure 2): recursion trees at n = {n} ==\n\n"));
        out.push_str(&format!(
            "Algorithm 1 depth K = ceil(3 log2 n)       = {} (2^K leaves = 2^{})\n",
            self.alg1_depth, self.alg1_depth
        ));
        out.push_str(&format!(
            "Algorithm 2 depth   = ceil(l log2 log2 n)  = {} ((log n)^l ~ {:.0} leaves)\n\n",
            self.alg2_depth,
            (n as f64).log2().powf(sleepy_mis::ELL)
        ));
        let table = |levels: &[LevelOccupancy], title: &str| -> String {
            let mut t =
                TextTable::new(vec!["depth", "measured E[Z]", "(3/4)^i * n bound", "within"]);
            for l in levels {
                t.row(vec![
                    l.depth.to_string(),
                    format!("{:.1}", l.measured),
                    format!("{:.1}", l.predicted_bound),
                    if l.measured <= l.predicted_bound { "yes".into() } else { "NO".into() },
                ]);
            }
            format!("{title}\n{}\n", t.render())
        };
        out.push_str(&table(&self.alg1_levels, "-- Algorithm 1 level occupancy (Lemma 7) --"));
        out.push_str(&table(&self.alg2_levels, "-- Algorithm 2 level occupancy --"));
        out.push_str(&format!(
            "Algorithm 2 base cases: {:.1} instances, {:.1} total participants \
             (Lemma 12 predicts ~ n/log2 n = {:.1})\n",
            self.alg2_base_instances,
            self.alg2_base_population,
            self.alg2_base_population_predicted
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_runs_small() {
        let cfg = Figure2Config {
            family: GraphFamily::GnpAvgDeg(6.0),
            n: 1 << 10,
            trials: 3,
            base_seed: 1,
        };
        let r = run_figure2(&cfg).unwrap();
        assert_eq!(r.alg1_depth, 30);
        assert_eq!(r.alg2_depth, depth_alg2(1 << 10));
        // Root level holds everyone.
        assert!((r.alg1_levels[0].measured - 1024.0).abs() < 1e-9);
        assert!((r.alg2_levels[0].measured - 1024.0).abs() < 1e-9);
        // Occupancy decays.
        assert!(r.alg1_levels[8].measured < 0.5 * 1024.0);
        assert!(r.alg2_base_population > 0.0);
        let text = r.render();
        assert!(text.contains("Lemma 7"));
    }
}
