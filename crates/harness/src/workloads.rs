//! Standard workload suite used across experiments.
//!
//! The types moved to [`sleepy_fleet`] so the batch runtime can consume
//! them without depending on the harness; this module re-exports them
//! for the experiments and downstream users.

pub use sleepy_fleet::{standard_families, Workload};
