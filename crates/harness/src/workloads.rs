//! Standard workload suite used across experiments.

use serde::{Deserialize, Serialize};
use sleepy_graph::{Graph, GraphError, GraphFamily};

/// A named workload: a graph family at a given size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The graph family.
    pub family: GraphFamily,
    /// Target node count.
    pub n: usize,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(family: GraphFamily, n: usize) -> Self {
        Workload { family, n }
    }

    /// Generates the trial instance for a seed (the graph seed is derived
    /// from the trial seed so graph and algorithm coins are independent).
    pub fn instance(&self, trial_seed: u64) -> Result<Graph, GraphError> {
        self.family.generate(self.n, trial_seed.wrapping_mul(0x9E37_79B9).wrapping_add(1))
    }

    /// Stable label for reports.
    pub fn label(&self) -> String {
        format!("{}/n={}", self.family.label(), self.n)
    }
}

/// The default family mix used by the experiments: sparse G(n,p), a
/// connected-regime G(n,p), random regular, random geometric (the paper's
/// sensor-network motivation), power-law, and trees.
pub fn standard_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::GnpAvgDeg(8.0),
        GraphFamily::GnpLogDensity(1.5),
        GraphFamily::RandomRegular(4),
        GraphFamily::GeometricAvgDeg(8.0),
        GraphFamily::BarabasiAlbert(3),
        GraphFamily::Tree,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_deterministic() {
        let w = Workload::new(GraphFamily::GnpAvgDeg(4.0), 64);
        assert_eq!(w.instance(3).unwrap(), w.instance(3).unwrap());
        assert_ne!(w.instance(3).unwrap(), w.instance(4).unwrap());
        assert!(w.label().contains("n=64"));
    }

    #[test]
    fn standard_suite_generates() {
        for fam in standard_families() {
            let g = Workload::new(fam, 100).instance(1).unwrap();
            assert!(g.n() >= 90, "{fam}");
        }
    }
}
