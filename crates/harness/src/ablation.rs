//! **Experiment AB — ablations of the paper's fixed design choices.**
//!
//! The paper fixes two knobs that this experiment sweeps:
//!
//! 1. **The greedy budget constant c** (Algorithm 2 runs its base cases
//!    for exactly c·log n rounds, c "a large but fixed constant"). We
//!    measure the Monte-Carlo timeout rate as a function of c: how large
//!    does c actually need to be?
//! 2. **The truncation depth.** Algorithm 1 recurses to 3·log₂ n,
//!    Algorithm 2 to ℓ·log₂log₂ n. Interpolating the depth between the
//!    two shows the trade: deeper trees shrink the base-case load but
//!    inflate the padded schedule exponentially, while the node-averaged
//!    awake complexity stays flat regardless — the truncation point is
//!    purely a *round*-complexity decision, exactly the paper's §4.4
//!    argument.

use crate::error::HarnessError;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_fleet::deterministic_map;
use sleepy_graph::GraphFamily;
use sleepy_mis::{depth_alg1, depth_alg2, execute_sleeping_mis, MisConfig, SendPolicy, Variant};
use sleepy_stats::TextTable;
use sleepy_verify::verify_mis;

/// Configuration of the ablation experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Graph family.
    pub family: GraphFamily,
    /// Node count.
    pub n: usize,
    /// Trials per setting.
    pub trials: usize,
    /// Values of the greedy budget constant c to sweep.
    pub greedy_cs: Vec<f64>,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            family: GraphFamily::GnpAvgDeg(8.0),
            n: 1 << 12,
            trials: 10,
            greedy_cs: vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
            base_seed: 0xAB,
        }
    }
}

/// One row of the greedy-constant sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GreedyCRow {
    /// The constant c.
    pub c: f64,
    /// Fraction of trials with at least one base-case timeout.
    pub trial_timeout_rate: f64,
    /// Mean number of timed-out nodes per trial.
    pub mean_timeout_nodes: f64,
    /// Fraction of trials whose output was a valid MIS.
    pub valid_fraction: f64,
    /// Mean worst-case round complexity.
    pub mean_worst_round: f64,
}

/// One row of the truncation-depth sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepthRow {
    /// Recursion depth used.
    pub depth: u32,
    /// Mean node-averaged awake complexity.
    pub mean_avg_awake: f64,
    /// Mean worst-case awake complexity.
    pub mean_worst_awake: f64,
    /// Mean worst-case round complexity.
    pub mean_worst_round: f64,
    /// Mean total participants across base cases.
    pub mean_base_population: f64,
}

/// One row of the send-policy sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SendPolicyRow {
    /// Algorithm label.
    pub algo: String,
    /// Mean total messages under the pseudocode's broadcast policy.
    pub broadcast_messages: f64,
    /// Mean total messages addressing only subgraph/alive ports.
    pub subgraph_messages: f64,
}

/// Results of experiment AB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationReport {
    /// The configuration used.
    pub config: AblationConfig,
    /// Greedy-constant sweep (Algorithm 2).
    pub greedy_c: Vec<GreedyCRow>,
    /// Truncation-depth sweep, from Algorithm 2's depth up toward
    /// Algorithm 1's.
    pub depth: Vec<DepthRow>,
    /// Send-policy message-volume comparison (identical executions, only
    /// addressing differs).
    pub send_policy: Vec<SendPolicyRow>,
}

/// Runs experiment AB.
///
/// # Errors
///
/// Propagates workload and execution failures.
pub fn run_ablation(config: &AblationConfig) -> Result<AblationReport, HarnessError> {
    let workload = Workload::new(config.family, config.n);
    let seeds: Vec<u64> = (0..config.trials as u64).map(|t| config.base_seed + 977 * t).collect();

    // --- Greedy constant sweep ---
    let mut greedy_c = Vec::new();
    for &c in &config.greedy_cs {
        let rows = deterministic_map(seeds.len(), 0, |i| -> Result<_, HarnessError> {
            let seed = seeds[i];
            let g = workload.instance(seed)?;
            let mut cfg = MisConfig::alg2(seed);
            cfg.greedy_c = c;
            let out = execute_sleeping_mis(&g, cfg)?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            let valid = verify_mis(&g, &out.in_mis).is_ok();
            Ok((timeouts, valid, out.total_rounds))
        })?;
        greedy_c.push(GreedyCRow {
            c,
            trial_timeout_rate: rows.iter().filter(|r| r.0 > 0).count() as f64 / rows.len() as f64,
            mean_timeout_nodes: rows.iter().map(|r| r.0 as f64).sum::<f64>() / rows.len() as f64,
            valid_fraction: rows.iter().filter(|r| r.1).count() as f64 / rows.len() as f64,
            mean_worst_round: rows.iter().map(|r| r.2 as f64).sum::<f64>() / rows.len() as f64,
        });
    }

    // --- Truncation depth sweep ---
    let d2 = depth_alg2(config.n);
    let d1 = depth_alg1(config.n);
    let mut depths: Vec<u32> = Vec::new();
    let mut d = d2;
    while d < d1 {
        depths.push(d);
        d += ((d1 - d2) / 5).max(1);
    }
    depths.push(d1);
    let mut depth_rows = Vec::new();
    for &depth in &depths {
        let rows = deterministic_map(seeds.len(), 0, |i| -> Result<_, HarnessError> {
            let seed = seeds[i];
            let g = workload.instance(seed)?;
            let mut cfg = MisConfig::alg2(seed);
            cfg.depth_override = Some(depth);
            let out = execute_sleeping_mis(&g, cfg)?;
            let s = out.summary();
            let (_, base_pop) = out.tree.base_case_load();
            Ok((s.node_avg_awake, s.worst_awake as f64, s.worst_round as f64, base_pop as f64))
        })?;
        type DepthObs = (f64, f64, f64, f64);
        let mean =
            |f: &dyn Fn(&DepthObs) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
        depth_rows.push(DepthRow {
            depth,
            mean_avg_awake: mean(&|r| r.0),
            mean_worst_awake: mean(&|r| r.1),
            mean_worst_round: mean(&|r| r.2),
            mean_base_population: mean(&|r| r.3),
        });
    }
    // --- Send-policy sweep ---
    let mut send_policy = Vec::new();
    for variant in [Variant::SleepingMis, Variant::FastSleepingMis] {
        let totals = deterministic_map(seeds.len(), 0, |i| -> Result<_, HarnessError> {
            let seed = seeds[i];
            let g = workload.instance(seed)?;
            let mut cfg = if variant == Variant::SleepingMis {
                MisConfig::alg1(seed)
            } else {
                MisConfig::alg2(seed)
            };
            let broadcast: u64 = execute_sleeping_mis(&g, cfg)?.messages_sent.iter().sum();
            cfg.send_policy = SendPolicy::SubgraphOnly;
            let subgraph: u64 = execute_sleeping_mis(&g, cfg)?.messages_sent.iter().sum();
            Ok((broadcast as f64, subgraph as f64))
        })?;
        send_policy.push(SendPolicyRow {
            algo: variant.to_string(),
            broadcast_messages: totals.iter().map(|t| t.0).sum::<f64>() / totals.len() as f64,
            subgraph_messages: totals.iter().map(|t| t.1).sum::<f64>() / totals.len() as f64,
        });
    }
    Ok(AblationReport { config: config.clone(), greedy_c, depth: depth_rows, send_policy })
}

impl AblationReport {
    /// Renders both sweeps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiment AB — ablations (family {}, n = {}, {} trials/setting) ==\n\n",
            self.config.family, self.config.n, self.config.trials
        ));
        let mut t = TextTable::new(vec![
            "greedy c",
            "trial timeout rate",
            "timed-out nodes",
            "valid",
            "worst round",
        ]);
        for r in &self.greedy_c {
            t.row(vec![
                format!("{}", r.c),
                format!("{:.0}%", 100.0 * r.trial_timeout_rate),
                format!("{:.2}", r.mean_timeout_nodes),
                format!("{:.0}%", 100.0 * r.valid_fraction),
                format!("{:.0}", r.mean_worst_round),
            ]);
        }
        out.push_str("-- Algorithm 2 base-case budget: how large must c be? --\n");
        out.push_str(&t.render());
        out.push('\n');
        let mut t = TextTable::new(vec![
            "depth",
            "avg awake",
            "worst awake",
            "worst round",
            "base population",
        ]);
        for r in &self.depth {
            t.row(vec![
                r.depth.to_string(),
                format!("{:.2}", r.mean_avg_awake),
                format!("{:.1}", r.mean_worst_awake),
                format!("{:.0}", r.mean_worst_round),
                format!("{:.1}", r.mean_base_population),
            ]);
        }
        out.push_str(
            "-- Truncation depth: from Algorithm 2's l*loglog n up to Algorithm 1's 3 log n --\n",
        );
        out.push_str(&t.render());
        out.push_str(
            "\nReading guide: the awake average is flat in the depth — truncation only \
             trades base-case load against the exponentially growing padded schedule.\n",
        );
        out.push('\n');
        let mut t =
            TextTable::new(vec!["algorithm", "broadcast msgs", "subgraph-only msgs", "saving"]);
        for r in &self.send_policy {
            t.row(vec![
                r.algo.clone(),
                format!("{:.0}", r.broadcast_messages),
                format!("{:.0}", r.subgraph_messages),
                format!("{:.0}%", 100.0 * (1.0 - r.subgraph_messages / r.broadcast_messages)),
            ]);
        }
        out.push_str("-- Send policy: pseudocode broadcast vs subgraph-only addressing --\n");
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_small() {
        let cfg = AblationConfig {
            family: GraphFamily::GnpAvgDeg(6.0),
            n: 512,
            trials: 4,
            greedy_cs: vec![0.25, 4.0],
            base_seed: 3,
        };
        let r = run_ablation(&cfg).unwrap();
        assert_eq!(r.greedy_c.len(), 2);
        // A generous budget never times out; a starved one may.
        let big_c = &r.greedy_c[1];
        assert_eq!(big_c.trial_timeout_rate, 0.0);
        assert_eq!(big_c.valid_fraction, 1.0);
        // Depth sweep spans alg2..=alg1 depths.
        assert_eq!(r.depth.first().unwrap().depth, depth_alg2(512));
        assert_eq!(r.depth.last().unwrap().depth, depth_alg1(512));
        // Awake average flat across depths (within 2x).
        let awakes: Vec<f64> = r.depth.iter().map(|d| d.mean_avg_awake).collect();
        let max = awakes.iter().cloned().fold(0.0f64, f64::max);
        let min = awakes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max < 2.0 * min, "awake not flat across depths: {awakes:?}");
        // Worst round grows with depth.
        assert!(
            r.depth.last().unwrap().mean_worst_round
                > 10.0 * r.depth.first().unwrap().mean_worst_round
        );
        // Subgraph-only addressing strictly saves messages.
        for row in &r.send_policy {
            assert!(
                row.subgraph_messages < row.broadcast_messages,
                "{}: {} !< {}",
                row.algo,
                row.subgraph_messages,
                row.broadcast_messages
            );
        }
        assert!(r.render().contains("Truncation depth"));
        assert!(r.render().contains("Send policy"));
    }
}
