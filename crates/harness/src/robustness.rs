//! **Experiment RB — robustness under message loss (beyond the paper).**
//!
//! The paper's model is perfectly reliable: a message sent to an awake
//! neighbor always arrives. Real duty-cycled radios lose packets. This
//! experiment injects i.i.d. per-message loss into the engine and measures
//! how gracefully each algorithm's *output quality* degrades:
//!
//! * the sleeping algorithms depend on one-shot announcements at
//!   rigidly scheduled rounds (a lost `Status(In)` directly yields an
//!   independence violation),
//! * Luby-B re-draws priorities every phase, so a lost message usually
//!   only delays a node — but a lost `Join` can still produce adjacent
//!   MIS pairs,
//! * Greedy-CRT's fixed ranks mean a lost `Removed` can block a node
//!   behind a stale higher-ranked neighbor until it is freed by later
//!   eliminations (or, in Algorithm 2's bounded base case, a timeout).
//!
//! None of these algorithms were designed for lossy links; the point of
//! the experiment is to quantify the reliability assumption's weight, not
//! to rank the algorithms.

use crate::error::HarnessError;
use crate::workloads::Workload;
use serde::{Deserialize, Serialize};
use sleepy_baselines::{run_baseline, BaselineKind};
use sleepy_fleet::deterministic_map;
use sleepy_graph::GraphFamily;
use sleepy_mis::{run_sleeping_mis, MisConfig};
use sleepy_net::EngineConfig;
use sleepy_stats::TextTable;
use sleepy_verify::{verify_mis, MisViolation};

/// Configuration of the robustness experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Graph family.
    pub family: GraphFamily,
    /// Node count.
    pub n: usize,
    /// Loss probabilities to sweep.
    pub loss_probabilities: Vec<f64>,
    /// Trials per setting.
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            family: GraphFamily::GnpAvgDeg(8.0),
            n: 512,
            loss_probabilities: vec![0.0, 0.001, 0.01, 0.05, 0.1],
            trials: 10,
            base_seed: 0x10_55,
        }
    }
}

/// Outcome quality of one (algorithm, loss rate) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessCell {
    /// Algorithm label.
    pub algo: String,
    /// Injected per-message loss probability.
    pub loss: f64,
    /// Fraction of trials whose output was still a valid MIS.
    pub valid_fraction: f64,
    /// Mean independence violations (adjacent in-MIS pairs) per trial.
    pub mean_independence_violations: f64,
    /// Mean undominated nodes per trial.
    pub mean_maximality_violations: f64,
    /// Fraction of trials that completed (no engine error / round-cap hit).
    pub completed_fraction: f64,
}

/// Results of experiment RB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// The configuration used.
    pub config: RobustnessConfig,
    /// One cell per (algorithm, loss probability).
    pub cells: Vec<RobustnessCell>,
}

/// Counts both kinds of violations exhaustively (not just the first).
fn count_violations(g: &sleepy_graph::Graph, in_mis: &[bool]) -> (usize, usize) {
    let indep = g.edges().filter(|&(u, v)| in_mis[u as usize] && in_mis[v as usize]).count();
    let maximal = g
        .node_ids()
        .filter(|&v| !in_mis[v as usize] && !g.neighbors(v).iter().any(|&u| in_mis[u as usize]))
        .count();
    (indep, maximal)
}

const ROBUSTNESS_ALGOS: [&str; 4] = ["SleepingMIS", "Fast-SleepingMIS", "Luby-B", "Greedy-CRT"];

/// Runs experiment RB.
///
/// # Errors
///
/// Propagates workload failures; engine errors under loss are *recorded*
/// (as incomplete trials), not propagated.
pub fn run_robustness(config: &RobustnessConfig) -> Result<RobustnessReport, HarnessError> {
    let workload = Workload::new(config.family, config.n);
    let mut cells = Vec::new();
    for &loss in &config.loss_probabilities {
        for algo in ROBUSTNESS_ALGOS {
            let seeds: Vec<u64> =
                (0..config.trials as u64).map(|t| config.base_seed + 577 * t).collect();
            let trials = deterministic_map(seeds.len(), 0, |i| -> Result<_, HarnessError> {
                let seed = seeds[i];
                let g = workload.instance(seed)?;
                // The sleeping algorithms always finish within their padded
                // schedule, loss or not; only the baselines can stall under
                // loss, so only they get a (generous) round cap.
                let max_rounds = if algo.contains("Sleeping") {
                    EngineConfig::default().max_rounds
                } else {
                    200_000 + 100 * config.n as u64
                };
                let ec = EngineConfig {
                    loss_probability: loss,
                    loss_seed: seed ^ 0xF00D,
                    max_rounds,
                    ..EngineConfig::default()
                };
                let in_mis = match algo {
                    "SleepingMIS" => {
                        run_sleeping_mis(&g, MisConfig::alg1(seed), &ec).map(|r| r.in_mis)
                    }
                    "Fast-SleepingMIS" => {
                        run_sleeping_mis(&g, MisConfig::alg2(seed), &ec).map(|r| r.in_mis)
                    }
                    "Luby-B" => run_baseline(&g, BaselineKind::LubyB, seed, &ec)
                        .map(|r| r.in_mis)
                        .map_err(sleepy_mis::MisError::Engine),
                    _ => run_baseline(&g, BaselineKind::GreedyCrt, seed, &ec)
                        .map(|r| r.in_mis)
                        .map_err(sleepy_mis::MisError::Engine),
                };
                Ok(match in_mis {
                    Ok(in_mis) => {
                        let valid = verify_mis(&g, &in_mis).is_ok();
                        let _ = MisViolation::NotMaximal { node: 0 }; // doc anchor
                        let (iv, mv) = count_violations(&g, &in_mis);
                        Some((valid, iv, mv))
                    }
                    Err(_) => None, // engine error (e.g. cap) = incomplete
                })
            })?;
            let completed: Vec<_> = trials.iter().flatten().collect();
            let denom = completed.len().max(1) as f64;
            cells.push(RobustnessCell {
                algo: algo.to_string(),
                loss,
                valid_fraction: completed.iter().filter(|t| t.0).count() as f64 / denom,
                mean_independence_violations: completed.iter().map(|t| t.1 as f64).sum::<f64>()
                    / denom,
                mean_maximality_violations: completed.iter().map(|t| t.2 as f64).sum::<f64>()
                    / denom,
                completed_fraction: completed.len() as f64 / trials.len() as f64,
            });
        }
    }
    Ok(RobustnessReport { config: config.clone(), cells })
}

impl RobustnessReport {
    /// Renders the degradation table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Experiment RB — robustness under message loss (n = {}, {} trials/cell) ==\n\n",
            self.config.n, self.config.trials
        ));
        let mut t = TextTable::new(vec![
            "algorithm",
            "loss",
            "valid",
            "indep violations",
            "undominated",
            "completed",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.algo.clone(),
                format!("{:.3}", c.loss),
                format!("{:.0}%", 100.0 * c.valid_fraction),
                format!("{:.2}", c.mean_independence_violations),
                format!("{:.2}", c.mean_maximality_violations),
                format!("{:.0}%", 100.0 * c.completed_fraction),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\nAll algorithms assume reliable links; this quantifies how heavily the \
             paper's model leans on that (beyond-the-paper experiment).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_runs_small() {
        let cfg = RobustnessConfig {
            family: GraphFamily::GnpAvgDeg(6.0),
            n: 96,
            loss_probabilities: vec![0.0, 0.05],
            trials: 4,
            base_seed: 7,
        };
        let r = run_robustness(&cfg).unwrap();
        assert_eq!(r.cells.len(), 2 * 4);
        // Loss-free cells are perfect.
        for c in r.cells.iter().filter(|c| c.loss == 0.0) {
            assert_eq!(c.valid_fraction, 1.0, "{} should be valid at loss 0", c.algo);
            assert_eq!(c.completed_fraction, 1.0);
        }
        // At 5% loss at least one algorithm shows degradation (violations
        // or incompleteness) — message loss is not free.
        let degraded = r.cells.iter().filter(|c| c.loss > 0.0).any(|c| {
            c.valid_fraction < 1.0
                || c.mean_independence_violations > 0.0
                || c.completed_fraction < 1.0
        });
        assert!(degraded, "5% loss should visibly degrade someone");
        assert!(r.render().contains("message loss"));
    }
}
