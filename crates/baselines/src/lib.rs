//! # sleepy-baselines
//!
//! Baseline distributed MIS algorithms in the **traditional** (always-awake)
//! model, implemented on the same engine as the sleeping-model algorithms so
//! all four complexity measures of the paper are directly comparable
//! (Table 1's "prior MIS algorithms" row):
//!
//! * [`LubyA`] — Luby's algorithm, marking variant: each phase a node marks
//!   itself with probability 1/(2d(v)); higher-degree marked neighbors win
//!   conflicts (ties by id). O(log n) rounds whp.
//! * [`LubyB`] — Luby's algorithm, random-priority variant (also the
//!   Alon–Babai–Itai style): each phase every alive node draws a fresh
//!   random priority; local minima join. O(log n) rounds whp.
//! * [`GreedyCrt`] — the parallel/distributed randomized greedy of
//!   Coppersmith–Raghavan–Tompa: one random rank drawn up front, local
//!   maxima join each phase. O(log n) rounds whp (Fischer–Noever), and the
//!   output is the lexicographically-first MIS of the rank order.
//! * [`Ghaffari`] — Ghaffari's 2016 desire-level algorithm: nodes maintain
//!   an exponential desire level p_v, doubling/halving against the
//!   neighborhood pressure Σ p_u; marked nodes with no marked neighbor
//!   join.
//! * [`LubyColoring`] — Luby's randomized (Δ+1)-coloring, the problem the
//!   paper's §1.5 notes *is* solvable with O(1) node-averaged rounds in
//!   the traditional model (unlike MIS).
//!
//! Every protocol follows the Barenboim–Tzur termination convention the
//! paper adopts: as soon as a node's status is decided *and announced to
//! its neighbors*, it terminates — so node-averaged round complexity is
//! meaningful. None of them ever sleeps: awake complexity equals round
//! complexity, which is exactly the comparison the paper draws.
//!
//! ```
//! use sleepy_baselines::{run_baseline, BaselineKind};
//! use sleepy_graph::generators;
//! use sleepy_net::EngineConfig;
//!
//! let g = generators::cycle(20).unwrap();
//! let run = run_baseline(&g, BaselineKind::LubyB, 7, &EngineConfig::default())?;
//! let size = run.in_mis.iter().filter(|&&b| b).count();
//! assert!((7..=10).contains(&size));
//! # Ok::<(), sleepy_net::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coloring;
mod ghaffari;
mod greedy;
mod luby;
mod runner;

pub use coloring::{ColoringMsg, LubyColoring};
pub use ghaffari::Ghaffari;
pub use greedy::GreedyCrt;
pub use luby::{LubyA, LubyB};
pub use runner::{
    run_baseline, run_baseline_taped, run_baseline_with_sink, BaselineKind, BaselineRun,
    ALL_BASELINES,
};
