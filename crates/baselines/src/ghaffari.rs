//! Ghaffari's 2016 desire-level MIS algorithm (SODA'16).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleepy_net::{Action, Incoming, MessageSize, NodeCtx, Outbox, Protocol};

/// Messages of [`Ghaffari`]. Desire levels are powers of two, transmitted
/// as exponents, so every message is O(log log n) bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhaffariMsg {
    /// The sender's desire level p = 2^{−exponent}.
    Desire {
        /// The exponent e with p = 2^{−e} (e ≥ 1).
        exponent: u8,
    },
    /// The sender marked itself this phase.
    Mark,
    /// The sender joined the MIS.
    Join,
    /// The sender was eliminated.
    Removed,
}

impl MessageSize for GhaffariMsg {
    fn bits(&self) -> usize {
        match self {
            GhaffariMsg::Desire { .. } => 2 + 8,
            _ => 2,
        }
    }
}

/// Largest tracked desire exponent (p never drops below 2^{−60}).
const MAX_EXPONENT: u8 = 60;

/// Ghaffari's algorithm: every undecided node maintains a desire level
/// p_v ∈ {2^{−1}, 2^{−2}, …} starting at 1/2. Each phase it marks itself
/// with probability p_v; a marked node with no marked neighbor joins the
/// MIS. The desire level halves when the neighborhood pressure
/// Σ_{u ∈ N(v)} p_u is at least 2 and doubles (capped at 1/2) otherwise.
///
/// This is the node-centric algorithm §1.3 of the paper discusses: each
/// node individually finishes in O(log deg + log 1/ε) rounds with
/// probability 1 − ε, yet its node-averaged complexity is still Θ(log n)
/// in the traditional model.
///
/// Phase layout (4 rounds): desire exchange → mark → join → cleanup.
#[derive(Debug)]
pub struct Ghaffari {
    rng: SmallRng,
    exponent: u8,
    pressure: f64,
    marked: bool,
    will_join: bool,
    in_mis: Option<bool>,
    announced_join: bool,
    eliminated_now: bool,
}

impl Ghaffari {
    /// Creates the node protocol; `seed` is the run's master seed.
    pub fn new(id: sleepy_graph::NodeId, seed: u64) -> Self {
        Ghaffari {
            rng: SmallRng::seed_from_u64(crate::runner::mix_seed(seed, id) ^ 0x6A11),
            exponent: 1,
            pressure: 0.0,
            marked: false,
            will_join: false,
            in_mis: None,
            announced_join: false,
            eliminated_now: false,
        }
    }
}

impl Protocol for Ghaffari {
    type Msg = GhaffariMsg;
    type Output = bool;

    fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<GhaffariMsg>) {
        match ctx.round % 4 {
            0 => out.broadcast(GhaffariMsg::Desire { exponent: self.exponent }),
            1 => {
                let p = 0.5f64.powi(self.exponent as i32);
                self.marked = self.rng.gen_bool(p);
                if self.marked {
                    out.broadcast(GhaffariMsg::Mark);
                }
            }
            2 => {
                if self.will_join && self.in_mis.is_none() {
                    self.in_mis = Some(true);
                    self.announced_join = true;
                    out.broadcast(GhaffariMsg::Join);
                }
            }
            _ => {
                if self.eliminated_now {
                    out.broadcast(GhaffariMsg::Removed);
                }
            }
        }
    }

    fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<GhaffariMsg>]) -> Action {
        match ctx.round % 4 {
            0 => {
                self.pressure = inbox
                    .iter()
                    .filter_map(|m| match m.msg {
                        GhaffariMsg::Desire { exponent } => Some(0.5f64.powi(exponent as i32)),
                        _ => None,
                    })
                    .sum();
                Action::Continue
            }
            1 => {
                let marked_neighbor = inbox.iter().any(|m| m.msg == GhaffariMsg::Mark);
                self.will_join = self.marked && !marked_neighbor;
                Action::Continue
            }
            2 => {
                if self.announced_join {
                    return Action::Terminate;
                }
                if inbox.iter().any(|m| m.msg == GhaffariMsg::Join) {
                    debug_assert!(self.in_mis.is_none());
                    self.in_mis = Some(false);
                    self.eliminated_now = true;
                }
                Action::Continue
            }
            _ => {
                if self.eliminated_now {
                    return Action::Terminate;
                }
                // Desire update against this phase's pressure.
                if self.pressure >= 2.0 {
                    self.exponent = (self.exponent + 1).min(MAX_EXPONENT);
                } else {
                    self.exponent = self.exponent.saturating_sub(1).max(1);
                }
                Action::Continue
            }
        }
    }

    fn output(&self) -> Option<bool> {
        self.in_mis
    }
}

#[cfg(test)]
mod tests {
    use crate::runner::{run_baseline, tests::assert_valid_mis, BaselineKind};
    use sleepy_graph::generators;
    use sleepy_net::EngineConfig;

    #[test]
    fn ghaffari_valid_mis() {
        for (i, g) in [
            generators::cycle(20).unwrap(),
            generators::clique(8).unwrap(),
            generators::gnp(70, 0.1, 4).unwrap(),
            generators::star(12).unwrap(),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..4 {
                let run = run_baseline(g, BaselineKind::Ghaffari, seed, &EngineConfig::default())
                    .unwrap();
                assert_valid_mis(g, &run.in_mis, &format!("ghaffari g{i} s{seed}"));
            }
        }
    }

    #[test]
    fn ghaffari_terminates_reasonably_fast() {
        let n = 1000;
        let g = generators::gnp(n, 8.0 / n as f64, 6).unwrap();
        let run = run_baseline(&g, BaselineKind::Ghaffari, 6, &EngineConfig::default()).unwrap();
        let cap = (40.0 * (n as f64).log2()) as u64;
        assert!(run.metrics.total_rounds < cap, "{} rounds", run.metrics.total_rounds);
    }
}
