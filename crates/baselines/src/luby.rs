//! Luby's classical MIS algorithm, in both standard variants.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleepy_graph::{NodeId, Port};
use sleepy_net::{Action, Incoming, MessageSize, NodeCtx, Outbox, Protocol};

/// Messages of [`LubyB`] (random-priority variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LubyBMsg {
    /// This phase's fresh random priority and the sender id.
    Propose {
        /// Fresh 64-bit priority for this phase.
        priority: u64,
        /// Sender id (tie-break).
        id: NodeId,
    },
    /// The sender joined the MIS.
    Join,
    /// The sender was eliminated.
    Removed,
}

impl MessageSize for LubyBMsg {
    fn bits(&self) -> usize {
        match self {
            LubyBMsg::Propose { .. } => 2 + 64 + 32,
            LubyBMsg::Join | LubyBMsg::Removed => 2,
        }
    }
}

/// Luby's algorithm, random-priority variant: each phase every undecided
/// node draws a fresh priority and broadcasts it; strict local minima join
/// the MIS; their neighbors are eliminated and announce removal.
///
/// Phase layout (3 rounds): propose → join → cleanup.
#[derive(Debug)]
pub struct LubyB {
    rng: SmallRng,
    priority: u64,
    in_mis: Option<bool>,
    announced_join: bool,
    eliminated_now: bool,
    /// Priorities heard this phase.
    heard: Vec<(u64, NodeId)>,
}

impl LubyB {
    /// Creates the node protocol; `seed` is the run's master seed.
    pub fn new(id: NodeId, seed: u64) -> Self {
        LubyB {
            rng: SmallRng::seed_from_u64(crate::runner::mix_seed(seed, id)),
            priority: 0,
            in_mis: None,
            announced_join: false,
            eliminated_now: false,
            heard: Vec::new(),
        }
    }
}

impl Protocol for LubyB {
    type Msg = LubyBMsg;
    type Output = bool;

    fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<LubyBMsg>) {
        match ctx.round % 3 {
            0 => {
                self.priority = self.rng.gen();
                out.broadcast(LubyBMsg::Propose { priority: self.priority, id: ctx.id });
            }
            1 => {
                let wins = self.heard.iter().all(|&(p, i)| (self.priority, ctx.id) < (p, i));
                if self.in_mis.is_none() && wins {
                    self.in_mis = Some(true);
                    self.announced_join = true;
                    out.broadcast(LubyBMsg::Join);
                }
            }
            _ => {
                if self.eliminated_now {
                    out.broadcast(LubyBMsg::Removed);
                }
            }
        }
    }

    fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<LubyBMsg>]) -> Action {
        match ctx.round % 3 {
            0 => {
                self.heard = inbox
                    .iter()
                    .filter_map(|m| match m.msg {
                        LubyBMsg::Propose { priority, id } => Some((priority, id)),
                        _ => None,
                    })
                    .collect();
                Action::Continue
            }
            1 => {
                if self.announced_join {
                    return Action::Terminate;
                }
                if inbox.iter().any(|m| m.msg == LubyBMsg::Join) {
                    debug_assert!(self.in_mis.is_none());
                    self.in_mis = Some(false);
                    self.eliminated_now = true;
                }
                Action::Continue
            }
            _ => {
                if self.eliminated_now {
                    return Action::Terminate;
                }
                Action::Continue
            }
        }
    }

    fn output(&self) -> Option<bool> {
        self.in_mis
    }
}

/// Messages of [`LubyA`] (degree-marking variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LubyAMsg {
    /// The sender's current degree in the surviving graph.
    Degree {
        /// Number of undecided neighbors.
        degree: u32,
    },
    /// The sender marked itself (with its degree and id for conflict
    /// resolution).
    Mark {
        /// Sender's current degree.
        degree: u32,
        /// Sender id (tie-break).
        id: NodeId,
    },
    /// The sender joined the MIS.
    Join,
    /// The sender was eliminated.
    Removed,
}

impl MessageSize for LubyAMsg {
    fn bits(&self) -> usize {
        match self {
            LubyAMsg::Degree { .. } => 2 + 32,
            LubyAMsg::Mark { .. } => 2 + 32 + 32,
            LubyAMsg::Join | LubyAMsg::Removed => 2,
        }
    }
}

/// Luby's algorithm, marking variant: each phase an undecided node of
/// current degree d marks itself with probability 1/(2d) (degree-0 nodes
/// join outright); a marked node unmarks if a marked neighbor has higher
/// degree (ties by id); surviving marked nodes join; neighbors are
/// eliminated.
///
/// Phase layout (4 rounds): degree exchange → mark → join → cleanup.
#[derive(Debug)]
pub struct LubyA {
    rng: SmallRng,
    /// Ports of still-undecided neighbors.
    alive: Vec<Port>,
    marked: bool,
    in_mis: Option<bool>,
    announced_join: bool,
    eliminated_now: bool,
    initialized: bool,
}

impl LubyA {
    /// Creates the node protocol; `seed` is the run's master seed.
    pub fn new(id: NodeId, seed: u64) -> Self {
        LubyA {
            rng: SmallRng::seed_from_u64(crate::runner::mix_seed(seed, id) ^ 0xA5A5),
            alive: Vec::new(),
            marked: false,
            in_mis: None,
            announced_join: false,
            eliminated_now: false,
            initialized: false,
        }
    }

    fn degree(&self) -> u32 {
        self.alive.len() as u32
    }
}

impl Protocol for LubyA {
    type Msg = LubyAMsg;
    type Output = bool;

    fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<LubyAMsg>) {
        if !self.initialized {
            self.alive = (0..ctx.degree).collect();
            self.initialized = true;
        }
        match ctx.round % 4 {
            0 => out.broadcast(LubyAMsg::Degree { degree: self.degree() }),
            1 => {
                let d = self.degree();
                self.marked = if d == 0 { true } else { self.rng.gen_range(0..2 * d as u64) == 0 };
                if self.marked {
                    out.broadcast(LubyAMsg::Mark { degree: d, id: ctx.id });
                }
            }
            2 => {
                if self.marked && self.in_mis.is_none() {
                    self.in_mis = Some(true);
                    self.announced_join = true;
                    out.broadcast(LubyAMsg::Join);
                }
            }
            _ => {
                if self.eliminated_now {
                    out.broadcast(LubyAMsg::Removed);
                }
            }
        }
    }

    fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<LubyAMsg>]) -> Action {
        match ctx.round % 4 {
            0 => Action::Continue, // degrees are re-announced in marks
            1 => {
                if self.marked {
                    let me = (self.degree(), ctx.id);
                    let beaten = inbox.iter().any(|m| match m.msg {
                        LubyAMsg::Mark { degree, id } => (degree, id) > me,
                        _ => false,
                    });
                    if beaten {
                        self.marked = false;
                    }
                }
                Action::Continue
            }
            2 => {
                if self.announced_join {
                    return Action::Terminate;
                }
                let joined: Vec<Port> =
                    inbox.iter().filter(|m| m.msg == LubyAMsg::Join).map(|m| m.port).collect();
                if !joined.is_empty() {
                    self.alive.retain(|p| !joined.contains(p));
                    debug_assert!(self.in_mis.is_none());
                    self.in_mis = Some(false);
                    self.eliminated_now = true;
                }
                Action::Continue
            }
            _ => {
                let removed: Vec<Port> =
                    inbox.iter().filter(|m| m.msg == LubyAMsg::Removed).map(|m| m.port).collect();
                self.alive.retain(|p| !removed.contains(p));
                if self.eliminated_now {
                    return Action::Terminate;
                }
                Action::Continue
            }
        }
    }

    fn output(&self) -> Option<bool> {
        self.in_mis
    }
}

#[cfg(test)]
mod tests {
    use crate::runner::{run_baseline, tests::assert_valid_mis, BaselineKind};
    use sleepy_graph::generators;
    use sleepy_net::EngineConfig;

    #[test]
    fn luby_b_valid_mis() {
        for (i, g) in [
            generators::cycle(25).unwrap(),
            generators::clique(9).unwrap(),
            generators::gnp(80, 0.08, 2).unwrap(),
            generators::grid2d(6, 6).unwrap(),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..4 {
                let run =
                    run_baseline(g, BaselineKind::LubyB, seed, &EngineConfig::default()).unwrap();
                assert_valid_mis(g, &run.in_mis, &format!("lubyB g{i} s{seed}"));
            }
        }
    }

    #[test]
    fn luby_a_valid_mis() {
        for (i, g) in [
            generators::cycle(25).unwrap(),
            generators::star(14).unwrap(),
            generators::gnp(80, 0.08, 2).unwrap(),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..4 {
                let run =
                    run_baseline(g, BaselineKind::LubyA, seed, &EngineConfig::default()).unwrap();
                assert_valid_mis(g, &run.in_mis, &format!("lubyA g{i} s{seed}"));
            }
        }
    }

    #[test]
    fn luby_b_rounds_logarithmic() {
        let n = 2000;
        let g = generators::gnp(n, 10.0 / n as f64, 8).unwrap();
        let run = run_baseline(&g, BaselineKind::LubyB, 8, &EngineConfig::default()).unwrap();
        let cap = (12.0 * (n as f64).log2()) as u64;
        assert!(run.metrics.total_rounds < cap, "{} rounds", run.metrics.total_rounds);
    }

    #[test]
    fn always_awake_baselines_never_sleep() {
        let g = generators::gnp(60, 0.1, 3).unwrap();
        for kind in [BaselineKind::LubyA, BaselineKind::LubyB] {
            let run = run_baseline(&g, kind, 3, &EngineConfig::default()).unwrap();
            for m in &run.metrics.per_node {
                // Awake every round of its life: awake == finish + 1.
                assert_eq!(m.awake_rounds, m.finish_round.unwrap() + 1, "{kind:?}");
            }
        }
    }
}
