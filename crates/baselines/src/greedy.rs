//! The parallel/distributed randomized greedy MIS
//! (Coppersmith–Raghavan–Tompa; tight O(log n) analysis by
//! Fischer–Noever).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleepy_graph::{NodeId, Port};
use sleepy_net::{Action, Incoming, MessageSize, NodeCtx, Outbox, Protocol};

/// Messages of [`GreedyCrt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyMsg {
    /// Rank exchange (round 0): the sender's fixed random rank and id.
    Rank {
        /// Random 64-bit rank, drawn once.
        rank: u64,
        /// Sender id (tie-break).
        id: NodeId,
    },
    /// The sender joined the MIS this phase.
    Join,
    /// The sender was eliminated and leaves the graph.
    Removed,
}

impl MessageSize for GreedyMsg {
    fn bits(&self) -> usize {
        match self {
            GreedyMsg::Rank { .. } => 2 + 64 + 32,
            GreedyMsg::Join | GreedyMsg::Removed => 2,
        }
    }
}

/// Per-node state of the distributed randomized greedy MIS.
///
/// An order (random ranks, tie-broken by id) is chosen once; each phase,
/// every undecided node that holds the highest rank among its undecided
/// neighbors joins the MIS and its neighbors are eliminated. The output is
/// the **lexicographically-first MIS** of the rank order — the same MIS the
/// sequential greedy computes (used by the Corollary 1 experiments).
///
/// Round layout: round 0 exchanges ranks; thereafter phases of two rounds
/// (join announcements, removal announcements).
#[derive(Debug, Clone)]
pub struct GreedyCrt {
    rank: u64,
    alive: Vec<(Port, u64, NodeId)>,
    in_mis: Option<bool>,
    announced_join: bool,
    eliminated_now: bool,
}

impl GreedyCrt {
    /// Creates the node protocol; `seed` is the run's master seed.
    pub fn new(id: NodeId, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(crate::runner::mix_seed(seed, id));
        GreedyCrt {
            rank: rng.gen(),
            alive: Vec::new(),
            in_mis: None,
            announced_join: false,
            eliminated_now: false,
        }
    }

    /// The node's fixed rank (exposed for the Corollary 1 reference
    /// comparison).
    pub fn rank_of(id: NodeId, seed: u64) -> u64 {
        let mut rng = SmallRng::seed_from_u64(crate::runner::mix_seed(seed, id));
        rng.gen()
    }

    fn wins(&self, id: NodeId) -> bool {
        self.alive.iter().all(|&(_, r, i)| (self.rank, id) > (r, i))
    }
}

impl Protocol for GreedyCrt {
    type Msg = GreedyMsg;
    type Output = bool;

    fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<GreedyMsg>) {
        if ctx.round == 0 {
            out.broadcast(GreedyMsg::Rank { rank: self.rank, id: ctx.id });
        } else if (ctx.round - 1).is_multiple_of(2) {
            // Join round.
            if self.in_mis.is_none() && self.wins(ctx.id) {
                self.in_mis = Some(true);
                self.announced_join = true;
                out.broadcast(GreedyMsg::Join);
            }
        } else {
            // Removal round.
            if self.eliminated_now {
                out.broadcast(GreedyMsg::Removed);
            }
        }
    }

    fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<GreedyMsg>]) -> Action {
        if ctx.round == 0 {
            self.alive = inbox
                .iter()
                .filter_map(|m| match m.msg {
                    GreedyMsg::Rank { rank, id } => Some((m.port, rank, id)),
                    _ => None,
                })
                .collect();
            return Action::Continue;
        }
        if (ctx.round - 1).is_multiple_of(2) {
            // Join round.
            if self.announced_join {
                return Action::Terminate;
            }
            let joined: Vec<Port> =
                inbox.iter().filter(|m| m.msg == GreedyMsg::Join).map(|m| m.port).collect();
            if !joined.is_empty() {
                self.alive.retain(|&(p, _, _)| !joined.contains(&p));
                debug_assert!(self.in_mis.is_none());
                self.in_mis = Some(false);
                self.eliminated_now = true;
            }
            Action::Continue
        } else {
            // Removal round.
            let removed: Vec<Port> =
                inbox.iter().filter(|m| m.msg == GreedyMsg::Removed).map(|m| m.port).collect();
            self.alive.retain(|&(p, _, _)| !removed.contains(&p));
            if self.eliminated_now {
                return Action::Terminate;
            }
            Action::Continue
        }
    }

    fn output(&self) -> Option<bool> {
        self.in_mis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_baseline, BaselineKind};
    use sleepy_graph::generators;
    use sleepy_net::EngineConfig;

    #[test]
    fn greedy_is_valid_mis() {
        for (i, g) in [
            generators::cycle(21).unwrap(),
            generators::clique(8).unwrap(),
            generators::gnp(90, 0.07, 3).unwrap(),
            generators::star(15).unwrap(),
            generators::empty(5).unwrap(),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..4 {
                let run = run_baseline(g, BaselineKind::GreedyCrt, seed, &EngineConfig::default())
                    .unwrap();
                crate::runner::tests::assert_valid_mis(g, &run.in_mis, &format!("g{i} s{seed}"));
            }
        }
    }

    #[test]
    fn isolated_node_joins_fast() {
        let g = generators::empty(3).unwrap();
        let run = run_baseline(&g, BaselineKind::GreedyCrt, 0, &EngineConfig::default()).unwrap();
        assert!(run.in_mis.iter().all(|&b| b));
        assert_eq!(run.metrics.total_rounds, 2); // rank round + join round
    }

    #[test]
    fn rounds_logarithmic_in_practice() {
        let n = 2000;
        let g = generators::gnp(n, 8.0 / n as f64, 5).unwrap();
        let run = run_baseline(&g, BaselineKind::GreedyCrt, 5, &EngineConfig::default()).unwrap();
        // Fischer–Noever: O(log n) phases whp; generous cap of 8·log2(n)
        // rounds total.
        let cap = (8.0 * (n as f64).log2()) as u64;
        assert!(run.metrics.total_rounds < cap, "{} rounds", run.metrics.total_rounds);
    }

    #[test]
    fn rank_of_matches_protocol() {
        let p = GreedyCrt::new(5, 99);
        assert_eq!(p.rank, GreedyCrt::rank_of(5, 99));
    }
}
