//! Luby's randomized (Δ+1)-coloring — the paper's §1.5 contrast point.
//!
//! The paper observes (following Barenboim–Tzur §6.2) that (Δ+1)-coloring
//! *can* be solved with O(1) node-averaged round complexity in the
//! traditional model by Luby's coloring algorithm, because a constant
//! fraction of the undecided nodes finalizes a color every phase — while
//! no such bound is known for MIS, which is what motivates the sleeping
//! model. This module implements that algorithm so the claim is measurable
//! side by side with the MIS algorithms.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleepy_graph::NodeId;
use sleepy_net::{Action, Incoming, MessageSize, NodeCtx, Outbox, Protocol};

/// Messages of [`LubyColoring`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColoringMsg {
    /// The sender tentatively proposes this color for the current phase.
    Propose {
        /// Proposed color.
        color: u32,
    },
    /// The sender finalizes this color and leaves the algorithm.
    Final {
        /// The permanent color.
        color: u32,
    },
}

impl MessageSize for ColoringMsg {
    fn bits(&self) -> usize {
        1 + 32
    }
}

/// Luby's (Δ+1)-coloring: each phase, every undecided node v proposes a
/// uniformly random color from {0, …, deg(v)} minus the colors already
/// finalized by neighbors; if no undecided neighbor proposed the same
/// color this phase, v keeps it, announces `Final` and terminates.
///
/// Each node's palette has deg(v)+1 colors and loses at most one per
/// finalized neighbor, so it never empties; the success probability per
/// phase is a constant, giving O(1) expected node-averaged rounds — the
/// property the paper contrasts against MIS.
///
/// Phase layout (2 rounds): propose → finalize.
#[derive(Debug)]
pub struct LubyColoring {
    rng: SmallRng,
    /// Colors permanently taken by finalized neighbors.
    taken: Vec<bool>,
    proposal: u32,
    conflicted: bool,
    color: Option<u32>,
    announced: bool,
    initialized: bool,
}

impl LubyColoring {
    /// Creates the node protocol; `seed` is the run's master seed.
    pub fn new(id: NodeId, seed: u64) -> Self {
        LubyColoring {
            rng: SmallRng::seed_from_u64(crate::runner::mix_seed(seed, id) ^ 0xC0105),
            taken: Vec::new(),
            proposal: 0,
            conflicted: false,
            color: None,
            announced: false,
            initialized: false,
        }
    }

    fn pick_color(&mut self) -> u32 {
        let available: Vec<u32> =
            (0..self.taken.len() as u32).filter(|&c| !self.taken[c as usize]).collect();
        debug_assert!(!available.is_empty(), "palette cannot empty: deg+1 colors, <=deg taken");
        available[self.rng.gen_range(0..available.len())]
    }
}

impl Protocol for LubyColoring {
    type Msg = ColoringMsg;
    type Output = u32;

    fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<ColoringMsg>) {
        if !self.initialized {
            // Palette {0, ..., deg}: deg+1 colors.
            self.taken = vec![false; ctx.degree + 1];
            self.initialized = true;
        }
        if ctx.round.is_multiple_of(2) {
            if self.color.is_none() {
                self.proposal = self.pick_color();
                out.broadcast(ColoringMsg::Propose { color: self.proposal });
            }
        } else if self.color.is_some() && !self.announced {
            self.announced = true;
            out.broadcast(ColoringMsg::Final { color: self.color.expect("just checked") });
        }
    }

    fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<ColoringMsg>]) -> Action {
        if ctx.round.is_multiple_of(2) {
            // Propose round: detect conflicts with undecided neighbors.
            if self.color.is_none() {
                self.conflicted =
                    inbox.iter().any(|m| m.msg == ColoringMsg::Propose { color: self.proposal });
                if !self.conflicted {
                    self.color = Some(self.proposal);
                }
            }
            Action::Continue
        } else {
            // Finalize round: neighbors' permanent colors leave my palette.
            for m in inbox {
                if let ColoringMsg::Final { color } = m.msg {
                    if (color as usize) < self.taken.len() {
                        self.taken[color as usize] = true;
                    }
                }
            }
            if self.announced {
                Action::Terminate
            } else {
                Action::Continue
            }
        }
    }

    fn output(&self) -> Option<u32> {
        // A node commits its output only once announced (Barenboim–Tzur
        // convention: decide, tell the neighbors, terminate).
        self.announced.then(|| self.color.expect("announced implies colored"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::{generators, Graph};
    use sleepy_net::{run_protocol, EngineConfig};

    fn run_coloring(g: &Graph, seed: u64) -> (Vec<u32>, sleepy_net::RunMetrics) {
        let run = run_protocol(g, &EngineConfig::default(), |id, _| LubyColoring::new(id, seed))
            .expect("coloring runs");
        let colors = run.outputs.into_iter().map(|c| c.expect("all colored")).collect();
        (colors, run.metrics)
    }

    fn assert_proper(g: &Graph, colors: &[u32], label: &str) {
        for (u, v) in g.edges() {
            assert_ne!(
                colors[u as usize], colors[v as usize],
                "{label}: edge ({u},{v}) monochromatic"
            );
        }
        for v in g.node_ids() {
            assert!(
                colors[v as usize] <= g.degree(v) as u32,
                "{label}: node {v} uses color outside its deg+1 palette"
            );
        }
    }

    #[test]
    fn proper_coloring_on_varied_graphs() {
        for (i, g) in [
            generators::cycle(21).unwrap(),
            generators::clique(10).unwrap(),
            generators::star(15).unwrap(),
            generators::gnp(80, 0.1, 3).unwrap(),
            generators::grid2d(6, 6).unwrap(),
            generators::empty(5).unwrap(),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..4 {
                let (colors, _) = run_coloring(g, seed);
                assert_proper(g, &colors, &format!("g{i} s{seed}"));
            }
        }
    }

    #[test]
    fn max_color_at_most_delta() {
        let g = generators::gnp(100, 0.08, 5).unwrap();
        let (colors, _) = run_coloring(&g, 1);
        let used = colors.iter().copied().max().unwrap();
        assert!(used <= g.max_degree() as u32, "used color {used} > Delta");
    }

    #[test]
    fn node_average_rounds_flat_in_n() {
        // The paper's §1.5 point: coloring is O(1) node-averaged in the
        // traditional model. Check the average decide time stays flat
        // over an 16x size range.
        let mut means = Vec::new();
        for n in [256usize, 1024, 4096] {
            let g = generators::gnp_avg_degree(n, 8.0, n as u64).unwrap();
            let (_, metrics) = run_coloring(&g, 7);
            means.push(metrics.summary().node_avg_round);
        }
        let max = means.iter().cloned().fold(0.0f64, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max < 1.6 * min, "coloring node-average not flat: {means:?}");
        assert!(max < 12.0, "coloring node-average suspiciously large: {means:?}");
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(60, 0.1, 2).unwrap();
        assert_eq!(run_coloring(&g, 9).0, run_coloring(&g, 9).0);
    }
}
