//! Uniform runner over the baseline algorithms.

use crate::{Ghaffari, GreedyCrt, LubyA, LubyB};
use serde::{Deserialize, Serialize};
use sleepy_graph::{Graph, NodeId};
use sleepy_net::{
    run_protocol, run_protocol_taped, run_protocol_with_sink, EngineConfig, EngineError,
    RunMetrics, Tape, TraceSink,
};

/// Which baseline MIS algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineKind {
    /// Luby's marking variant.
    LubyA,
    /// Luby's random-priority variant.
    LubyB,
    /// Distributed randomized greedy (CRT / Fischer–Noever).
    GreedyCrt,
    /// Ghaffari's 2016 desire-level algorithm.
    Ghaffari,
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineKind::LubyA => f.write_str("Luby-A"),
            BaselineKind::LubyB => f.write_str("Luby-B"),
            BaselineKind::GreedyCrt => f.write_str("Greedy-CRT"),
            BaselineKind::Ghaffari => f.write_str("Ghaffari"),
        }
    }
}

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// MIS membership per node.
    pub in_mis: Vec<bool>,
    /// Engine metrics.
    pub metrics: RunMetrics,
}

/// Derives a per-node RNG seed from the master seed (SplitMix64 mix).
pub(crate) fn mix_seed(master: u64, node: NodeId) -> u64 {
    let mut z = master ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the chosen baseline on `graph` with the given master seed.
///
/// # Errors
///
/// Propagates engine failures (in particular
/// [`EngineError::MaxRoundsExceeded`] if a round cap is configured).
///
/// # Example
///
/// ```
/// use sleepy_baselines::{run_baseline, BaselineKind};
/// use sleepy_graph::generators;
/// use sleepy_net::EngineConfig;
///
/// let g = generators::star(10).unwrap();
/// let run = run_baseline(&g, BaselineKind::GreedyCrt, 1, &EngineConfig::default())?;
/// // On a star either the hub alone or all leaves form the MIS.
/// let size = run.in_mis.iter().filter(|&&b| b).count();
/// assert!(size == 1 || size == 9);
/// # Ok::<(), sleepy_net::EngineError>(())
/// ```
pub fn run_baseline(
    graph: &Graph,
    kind: BaselineKind,
    seed: u64,
    engine_config: &EngineConfig,
) -> Result<BaselineRun, EngineError> {
    match kind {
        BaselineKind::LubyA => {
            collect(run_protocol(graph, engine_config, |id, _| LubyA::new(id, seed))?)
        }
        BaselineKind::LubyB => {
            collect(run_protocol(graph, engine_config, |id, _| LubyB::new(id, seed))?)
        }
        BaselineKind::GreedyCrt => {
            collect(run_protocol(graph, engine_config, |id, _| GreedyCrt::new(id, seed))?)
        }
        BaselineKind::Ghaffari => {
            collect(run_protocol(graph, engine_config, |id, _| Ghaffari::new(id, seed))?)
        }
    }
}

/// [`run_baseline`] with the engine streaming every protocol event into
/// `sink` — the entry point for round-timeline recorders and schedule
/// validators (`config.trace` flags are ignored on this path).
///
/// # Errors
///
/// Same as [`run_baseline`].
pub fn run_baseline_with_sink(
    graph: &Graph,
    kind: BaselineKind,
    seed: u64,
    engine_config: &EngineConfig,
    sink: &mut dyn TraceSink,
) -> Result<BaselineRun, EngineError> {
    match kind {
        BaselineKind::LubyA => collect(run_protocol_with_sink(
            graph,
            engine_config,
            |id, _| LubyA::new(id, seed),
            sink,
        )?),
        BaselineKind::LubyB => collect(run_protocol_with_sink(
            graph,
            engine_config,
            |id, _| LubyB::new(id, seed),
            sink,
        )?),
        BaselineKind::GreedyCrt => collect(run_protocol_with_sink(
            graph,
            engine_config,
            |id, _| GreedyCrt::new(id, seed),
            sink,
        )?),
        BaselineKind::Ghaffari => collect(run_protocol_with_sink(
            graph,
            engine_config,
            |id, _| Ghaffari::new(id, seed),
            sink,
        )?),
    }
}

/// [`run_baseline_with_sink`] recording the run as an engine
/// [`Tape`] — the entry point behind `fleet record-tape`.
///
/// The tape is returned even when the engine errors (the recorded error
/// is part of the conformance artifact); its `label` and `seed` stamps
/// are left empty for the caller to fill.
pub fn run_baseline_taped(
    graph: &Graph,
    kind: BaselineKind,
    seed: u64,
    engine_config: &EngineConfig,
    sink: &mut dyn TraceSink,
) -> (Result<BaselineRun, EngineError>, Tape) {
    let (result, tape) = match kind {
        BaselineKind::LubyA => {
            run_protocol_taped(graph, engine_config, |id, _| LubyA::new(id, seed), sink)
        }
        BaselineKind::LubyB => {
            run_protocol_taped(graph, engine_config, |id, _| LubyB::new(id, seed), sink)
        }
        BaselineKind::GreedyCrt => {
            run_protocol_taped(graph, engine_config, |id, _| GreedyCrt::new(id, seed), sink)
        }
        BaselineKind::Ghaffari => {
            run_protocol_taped(graph, engine_config, |id, _| Ghaffari::new(id, seed), sink)
        }
    };
    (result.and_then(collect), tape)
}

fn collect(outcome: sleepy_net::RunOutcome<bool>) -> Result<BaselineRun, EngineError> {
    let in_mis =
        outcome.outputs.into_iter().map(|o| o.expect("completed run has all outputs")).collect();
    Ok(BaselineRun { in_mis, metrics: outcome.metrics })
}

/// All baseline kinds, for sweeps.
pub const ALL_BASELINES: [BaselineKind; 4] =
    [BaselineKind::LubyA, BaselineKind::LubyB, BaselineKind::GreedyCrt, BaselineKind::Ghaffari];

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use sleepy_graph::generators;

    pub(crate) fn assert_valid_mis(g: &Graph, in_mis: &[bool], label: &str) {
        for (u, v) in g.edges() {
            assert!(
                !(in_mis[u as usize] && in_mis[v as usize]),
                "{label}: edge ({u},{v}) inside MIS"
            );
        }
        for v in g.node_ids() {
            assert!(
                in_mis[v as usize] || g.neighbors(v).iter().any(|&u| in_mis[u as usize]),
                "{label}: node {v} undominated"
            );
        }
    }

    #[test]
    fn all_baselines_run_and_are_valid() {
        let g = generators::gnp(50, 0.1, 1).unwrap();
        for kind in ALL_BASELINES {
            let run = run_baseline(&g, kind, 3, &EngineConfig::default()).unwrap();
            assert_valid_mis(&g, &run.in_mis, &kind.to_string());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::gnp(40, 0.12, 2).unwrap();
        for kind in ALL_BASELINES {
            let a = run_baseline(&g, kind, 5, &EngineConfig::default()).unwrap();
            let b = run_baseline(&g, kind, 5, &EngineConfig::default()).unwrap();
            assert_eq!(a.in_mis, b.in_mis, "{kind}");
        }
    }

    #[test]
    fn congest_budget_respected() {
        let n = 64;
        let g = generators::gnp(n, 0.1, 7).unwrap();
        let cfg = EngineConfig {
            congest_bits: Some(sleepy_net::congest_bits_budget(n)),
            ..EngineConfig::default()
        };
        for kind in ALL_BASELINES {
            run_baseline(&g, kind, 1, &cfg).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn round_cap_propagates() {
        let g = generators::clique(30).unwrap();
        let cfg = EngineConfig { max_rounds: 1, ..EngineConfig::default() };
        // With a 1-round cap at least one baseline cannot finish.
        let err = run_baseline(&g, BaselineKind::Ghaffari, 1, &cfg);
        assert!(err.is_err());
    }

    #[test]
    fn display_labels() {
        assert_eq!(BaselineKind::LubyA.to_string(), "Luby-A");
        assert_eq!(BaselineKind::GreedyCrt.to_string(), "Greedy-CRT");
    }
}
