//! Property-based tests over random graphs and seeds (proptest).

use proptest::prelude::*;
use sleepy::graph::{Graph, GraphFamily, NodeId};
use sleepy::mis::{
    depth_alg1, derive_all, execute_sleeping_mis, run_sleeping_mis, MisConfig, NodeRandomness,
    Schedule,
};
use sleepy::net::EngineConfig;
use sleepy::verify::{is_independent, verify_mis};

/// Strategy: an arbitrary simple graph as (n, edge set).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..max_edges.min(4 * n))
            .prop_map(move |pairs| {
                let edges: Vec<(NodeId, NodeId)> =
                    pairs.into_iter().filter(|(u, v)| u != v).collect();
                Graph::from_edges(n, edges).expect("filtered edges are valid")
            })
    })
}

fn has_rank_tie(n: usize, seed: u64) -> bool {
    let k = depth_alg1(n);
    let mut ranks: Vec<u128> = derive_all(seed, n).iter().map(|c| c.rank(k)).collect();
    ranks.sort_unstable();
    ranks.windows(2).any(|w| w[0] == w[1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alg1_output_is_mis_on_arbitrary_graphs(g in arb_graph(60), seed in 0u64..1000) {
        let out = execute_sleeping_mis(&g, MisConfig::alg1(seed)).unwrap();
        if has_rank_tie(g.n(), seed) {
            // Even with ties, independence violations can only involve
            // tied pairs; domination still holds (every node is decided).
            prop_assert!(out.in_mis.iter().any(|&b| b) || g.n() == 0);
        } else {
            prop_assert!(verify_mis(&g, &out.in_mis).is_ok());
        }
    }

    #[test]
    fn alg2_output_is_mis_on_arbitrary_graphs(g in arb_graph(60), seed in 0u64..1000) {
        let out = execute_sleeping_mis(&g, MisConfig::alg2(seed)).unwrap();
        if out.base_timeout.iter().all(|&t| !t) {
            prop_assert!(verify_mis(&g, &out.in_mis).is_ok());
        } else {
            prop_assert!(is_independent(&g, &out.in_mis));
        }
    }

    #[test]
    fn engine_matches_executor_on_arbitrary_graphs(g in arb_graph(40), seed in 0u64..100) {
        for cfg in [MisConfig::alg1(seed), MisConfig::alg2(seed)] {
            let engine = run_sleeping_mis(&g, cfg, &EngineConfig::default()).unwrap();
            let exec = execute_sleeping_mis(&g, cfg).unwrap();
            prop_assert_eq!(&engine.in_mis, &exec.in_mis);
            for v in 0..g.n() {
                prop_assert_eq!(
                    engine.metrics.per_node[v].awake_rounds,
                    exec.awake_rounds[v]
                );
                prop_assert_eq!(
                    engine.metrics.per_node[v].finish_round,
                    Some(exec.finish_rounds[v])
                );
            }
        }
    }

    #[test]
    fn rank_comparison_is_lexicographic(xa in any::<u128>(), xb in any::<u128>(), k in 1u32..=128) {
        let a = NodeRandomness { xbits: xa, greedy_rank: 0 };
        let b = NodeRandomness { xbits: xb, greedy_rank: 0 };
        // Integer order of rank(k) equals lexicographic order of
        // (X_k, ..., X_1): verify against an explicit bit-by-bit compare.
        let lex = {
            let mut ord = std::cmp::Ordering::Equal;
            for i in (1..=k).rev() {
                ord = a.x(i).cmp(&b.x(i));
                if ord != std::cmp::Ordering::Equal {
                    break;
                }
            }
            ord
        };
        prop_assert_eq!(a.rank(k).cmp(&b.rank(k)), lex);
    }

    #[test]
    fn schedule_recurrence_and_monotonicity(t0 in 0u64..10_000, k in 1u32..40) {
        let s = Schedule::alg2(t0);
        let t = s.duration(k).unwrap();
        let t1 = s.duration(k - 1).unwrap();
        prop_assert_eq!(t, 2 * t1 + 3);
        prop_assert!(t > t1);
    }

    #[test]
    fn generator_families_produce_simple_graphs(
        fam_idx in 0usize..6,
        n in 2usize..120,
        seed in 0u64..50,
    ) {
        let fams = [
            GraphFamily::GnpAvgDeg(5.0),
            GraphFamily::RandomRegular(3),
            GraphFamily::GeometricAvgDeg(5.0),
            GraphFamily::BarabasiAlbert(2),
            GraphFamily::Tree,
            GraphFamily::Grid2d,
        ];
        let g = fams[fam_idx].generate(n, seed).unwrap();
        // Simple graph invariants: sorted unique neighbor lists without
        // self loops, symmetric adjacency.
        for v in g.node_ids() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicate");
            prop_assert!(!nbrs.contains(&v), "self loop");
            for &u in nbrs {
                prop_assert!(g.neighbors(u).contains(&v), "asymmetric edge");
            }
        }
        prop_assert_eq!(
            g.node_ids().map(|v| g.degree(v)).sum::<usize>(),
            2 * g.m()
        );
    }

    #[test]
    fn awake_complexity_bounds_always_hold(g in arb_graph(80), seed in 0u64..200) {
        let out = execute_sleeping_mis(&g, MisConfig::alg1(seed)).unwrap();
        let k = depth_alg1(g.n()) as u64;
        for (v, &a) in out.awake_rounds.iter().enumerate() {
            prop_assert!(a <= 3 * (k + 1), "node {v}: awake {a} > 3(K+1)");
        }
        let t_k = Schedule::alg1().duration(k as u32).unwrap();
        prop_assert!(out.total_rounds <= t_k);
    }
}
