//! Property tests of the dynamic subsystem: after every churn batch the
//! repaired (or recomputed) set is a valid MIS of the mutated graph,
//! incremental repair restores validity after *every single event*,
//! the in-place (DynGraph) and rebuild-per-event incremental paths are
//! bit-identical, and delta application preserves structural invariants.

use proptest::prelude::*;
use sleepy::fleet::{
    measure_dynamic, seed, AlgoKind, DynamicWorkload, Execution, IncrementalRepairer,
    RebuildRepairer, RepairStrategy, Workload, ALL_STRATEGIES,
};
use sleepy::graph::{churn_delta, churn_delta_with_mis, ChurnSpec, GraphFamily, NodeId};
use sleepy::verify::{verify_mis, verify_mis_phases};

/// The families the churn path sweeps, picked by index.
fn family(idx: usize) -> GraphFamily {
    [
        GraphFamily::GnpAvgDeg(6.0),
        GraphFamily::GeometricAvgDeg(6.0),
        GraphFamily::RandomRegular(4),
        GraphFamily::BarabasiAlbert(2),
        GraphFamily::Tree,
        GraphFamily::Cycle,
        GraphFamily::Star,
    ][idx % 7]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core repair property: every phase of a dynamic trial — under
    /// arbitrary (bounded) churn intensities, all three strategies,
    /// both churn models, both paper algorithms — yields a valid MIS of
    /// that phase's graph.
    #[test]
    fn repaired_set_is_valid_mis_after_every_delta_batch(
        ((fam_idx, n, phases, seed), (edge_pm, node_pm, alg2, strat_idx, adversarial)) in (
            (0usize..7, 8usize..160, 2usize..5, 0u64..1 << 40),
            (
                0u64..300,   // edge churn in permille
                0u64..200,   // node churn in permille
                any::<bool>(),
                0usize..3,
                any::<bool>(),
            ),
        )
    ) {
        let mut churn = ChurnSpec {
            edge_delete_frac: edge_pm as f64 / 1000.0,
            edge_insert_frac: edge_pm as f64 / 1000.0,
            node_delete_frac: node_pm as f64 / 1000.0,
            node_insert_frac: node_pm as f64 / 1000.0,
            arrival_degree: 1 + (seed % 4) as usize,
            ..ChurnSpec::none()
        };
        if adversarial {
            churn = churn.adversarial();
        }
        let workload = DynamicWorkload::new(Workload::new(family(fam_idx), n), phases, churn);
        let algo = if alg2 { AlgoKind::FastSleepingMis } else { AlgoKind::SleepingMis };
        let strategy = ALL_STRATEGIES[strat_idx];
        let report = measure_dynamic(&workload, algo, seed, Execution::Auto, strategy)
            .expect("dynamic trial runs");
        prop_assert_eq!(report.phases.len(), phases);
        for p in &report.phases {
            prop_assert!(
                p.report.valid,
                "phase {} invalid under {:?}/{:?} on {} (n={}, seed={})",
                p.phase, algo, strategy, family(fam_idx), n, seed
            );
            // The MIS never exceeds the phase graph, the repair scope is
            // within bounds (incremental scopes sum over events, so only
            // the batched strategies are bounded by n), and carried
            // members stay in the final set (after eviction the repair
            // path only ever adds members).
            prop_assert!(p.report.mis_size <= p.report.n);
            if strategy != RepairStrategy::Incremental || p.phase == 0 {
                // Phase 0 always runs the whole graph, for every strategy.
                prop_assert!(p.repair_scope <= p.report.n);
                prop_assert!(p.updates.is_empty());
            } else {
                prop_assert_eq!(
                    p.updates.iter().map(|u| u.scope).sum::<usize>(),
                    p.repair_scope
                );
            }
            prop_assert!(p.carried <= p.report.mis_size);
        }
    }

    /// The incremental guarantee is stronger than per-phase validity:
    /// the set is a valid MIS after **every single absorbed event**,
    /// under both churn models.
    #[test]
    fn incremental_repair_valid_after_every_single_event(
        ((fam_idx, n, trial_seed), (edge_pm, node_pm, alg2, adversarial)) in (
            (0usize..7, 8usize..120, 0u64..1 << 40),
            (0u64..300, 0u64..200, any::<bool>(), any::<bool>()),
        )
    ) {
        let mut churn = ChurnSpec {
            edge_delete_frac: edge_pm as f64 / 1000.0,
            edge_insert_frac: edge_pm as f64 / 1000.0,
            node_delete_frac: node_pm as f64 / 1000.0,
            node_insert_frac: node_pm as f64 / 1000.0,
            arrival_degree: 1 + (trial_seed % 4) as usize,
            ..ChurnSpec::none()
        };
        if adversarial {
            churn = churn.adversarial();
        }
        let algo = if alg2 { AlgoKind::FastSleepingMis } else { AlgoKind::SleepingMis };
        let g = Workload::new(family(fam_idx), n).instance(trial_seed).expect("generates");
        let phase0 = measure_dynamic(
            &DynamicWorkload::new(Workload::new(family(fam_idx), n), 1, churn),
            algo, trial_seed, Execution::Auto, RepairStrategy::Incremental,
        ).expect("phase 0 runs");
        prop_assert!(phase0.phases[0].report.valid);
        // Rebuild the phase-0 set by hand so the repairer starts from a
        // genuine MIS of the generated instance.
        let mut in_mis = vec![false; g.n()];
        for v in 0..g.n() {
            if !g.neighbors(v as NodeId).iter().any(|&w| in_mis[w as usize]) {
                in_mis[v] = true;
            }
        }
        prop_assert!(verify_mis(&g, &in_mis).is_ok());
        let delta = churn_delta_with_mis(&g, &churn, trial_seed ^ 0xE4E7, Some(&in_mis))
            .expect("samples");
        let mut rep = IncrementalRepairer::new(g, in_mis, algo, Execution::Auto);
        for (k, event) in delta.events().into_iter().enumerate() {
            let record = rep
                .absorb(event, seed::update_seed(trial_seed, k as u64))
                .expect("absorbs");
            let (g_now, set_now) = rep.current();
            prop_assert!(
                verify_mis(&g_now, &set_now).is_ok(),
                "MIS invalid after event {} ({:?}) on {} (n={}, seed={})",
                k, record.kind, family(fam_idx), n, trial_seed
            );
            prop_assert!(record.scope <= rep.graph().n());
        }
    }

    /// The tentpole equivalence: absorbing an event sequence in place on
    /// a `DynGraph` produces **bit-identical** per-event `UpdateRecord`s,
    /// phase-end graph, membership and summary to the rebuild-per-event
    /// oracle (`RebuildRepairer`, the pre-refactor path) — over mixed
    /// sequences that include departures shrinking the id space — while
    /// performing zero CSR rebuilds until `finish`.
    #[test]
    fn inplace_incremental_path_matches_rebuild_oracle(
        ((fam_idx, n, trial_seed), (edge_pm, node_pm, alg2, adversarial)) in (
            (0usize..7, 8usize..110, 0u64..1 << 40),
            (0u64..300, 0u64..250, any::<bool>(), any::<bool>()),
        )
    ) {
        let mut churn = ChurnSpec {
            edge_delete_frac: edge_pm as f64 / 1000.0,
            edge_insert_frac: edge_pm as f64 / 1000.0,
            node_delete_frac: node_pm as f64 / 1000.0,
            node_insert_frac: node_pm as f64 / 1000.0,
            arrival_degree: 1 + (trial_seed % 4) as usize,
            ..ChurnSpec::none()
        };
        if adversarial {
            churn = churn.adversarial();
        }
        let algo = if alg2 { AlgoKind::FastSleepingMis } else { AlgoKind::SleepingMis };
        let g = Workload::new(family(fam_idx), n).instance(trial_seed).expect("generates");
        let order: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let in_mis = sleepy::verify::greedy_by_order(&g, &order);
        let delta = churn_delta_with_mis(&g, &churn, trial_seed ^ 0x17A9, Some(&in_mis))
            .expect("samples");
        let mut fast = IncrementalRepairer::new(g.clone(), in_mis.clone(), algo, Execution::Auto);
        let mut oracle = RebuildRepairer::new(g, in_mis, algo, Execution::Auto);
        for (k, event) in delta.events().into_iter().enumerate() {
            let s = seed::update_seed(trial_seed, k as u64);
            let a = fast.absorb(event, s).expect("in-place absorbs");
            let b = oracle.absorb(event, s).expect("oracle absorbs");
            prop_assert_eq!(a, b, "record diverged at event {} ({:?})", k, event);
        }
        prop_assert_eq!(fast.rebuild_count(), 0, "absorption must never rebuild the CSR");
        let a = fast.finish();
        let b = oracle.finish();
        prop_assert_eq!(&a.graph, &b.graph, "phase-end graphs diverged");
        prop_assert_eq!(&a.set, &b.set, "phase-end memberships diverged");
        prop_assert_eq!(a.summary, b.summary);
        prop_assert_eq!(a.base_timeouts, b.base_timeouts);
        prop_assert_eq!(a.scope, b.scope);
        prop_assert_eq!(a.carried, b.carried);
    }

    /// Graph-level equivalence, independent of any algorithm: a churn
    /// delta's event sequence applied in place on a `DynGraph` snapshots
    /// to the same graph as the sequential CSR `to_delta().apply()`
    /// chain — across several consecutive batches so departures keep
    /// shifting the compact id space under later events.
    #[test]
    fn dyngraph_event_sequences_match_sequential_csr_applies(
        ((fam_idx, n, seed), (edge_pm, node_pm, rounds)) in (
            (0usize..7, 2usize..120, 0u64..1 << 40),
            (0u64..350, 0u64..350, 1usize..4),
        )
    ) {
        let spec = ChurnSpec {
            edge_delete_frac: edge_pm as f64 / 1000.0,
            edge_insert_frac: edge_pm as f64 / 1000.0,
            node_delete_frac: node_pm as f64 / 1000.0,
            node_insert_frac: node_pm as f64 / 1000.0,
            arrival_degree: 2,
            ..ChurnSpec::none()
        };
        let mut csr = family(fam_idx).generate(n, seed).expect("generates");
        let mut dyn_g = csr.to_dyn();
        for round in 0..rounds {
            let delta = churn_delta(&csr, &spec, seed ^ (0xBEEF + round as u64))
                .expect("samples");
            for event in delta.events() {
                csr = event.to_delta().apply(&csr).expect("CSR applies").graph;
                dyn_g.apply_event(event).expect("DynGraph applies");
                prop_assert_eq!(dyn_g.n(), csr.n());
                prop_assert_eq!(dyn_g.m(), csr.m());
            }
            prop_assert_eq!(&dyn_g.snapshot(), &csr, "snapshot diverged in round {}", round);
        }
    }

    /// Delta application invariants: node/edge books balance, the id
    /// mapping is a bijection onto the survivors, and application is
    /// deterministic.
    #[test]
    fn delta_application_preserves_structure(
        (fam_idx, n, seed, edge_pm, node_pm) in (
            0usize..7, 2usize..120, 0u64..1 << 40, 0u64..400, 0u64..400,
        )
    ) {
        let g = family(fam_idx).generate(n, seed).expect("generates");
        let spec = ChurnSpec {
            edge_delete_frac: edge_pm as f64 / 1000.0,
            edge_insert_frac: edge_pm as f64 / 1000.0,
            node_delete_frac: node_pm as f64 / 1000.0,
            node_insert_frac: node_pm as f64 / 1000.0,
            arrival_degree: 2,
            ..ChurnSpec::none()
        };
        let delta = churn_delta(&g, &spec, seed ^ 0xD17A).expect("samples");
        let out = delta.apply(&g).expect("applies");
        let out2 = delta.apply(&g).expect("applies again");
        prop_assert_eq!(&out.graph, &out2.graph, "apply must be deterministic");

        // Book-keeping: n' = n - departures + arrivals.
        prop_assert_eq!(
            out.graph.n(),
            g.n() - delta.remove_nodes.len() + delta.add_nodes
        );
        // The mapping is injective over survivors and None exactly on
        // departures.
        let mut seen = vec![false; out.graph.n()];
        for (old, new) in out.old_to_new.iter().enumerate() {
            match new {
                Some(new) => {
                    prop_assert!(!delta.remove_nodes.contains(&(old as NodeId)));
                    prop_assert!(!seen[*new as usize], "mapping not injective");
                    seen[*new as usize] = true;
                }
                None => prop_assert!(delta.remove_nodes.contains(&(old as NodeId))),
            }
        }
        // Surviving edges not slated for removal are preserved.
        let removed_norm: Vec<(NodeId, NodeId)> = delta
            .remove_edges
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        for (u, v) in g.edges() {
            if removed_norm.contains(&(u, v)) {
                continue;
            }
            if let (Some(nu), Some(nv)) =
                (out.old_to_new[u as usize], out.old_to_new[v as usize])
            {
                prop_assert!(out.graph.has_edge(nu, nv), "surviving edge lost");
            }
        }
    }
}

/// Per-phase validity also composes with the standalone phase verifier:
/// running the graphs and sets through `verify_mis_phases` agrees with
/// the per-phase `valid` flags.
#[test]
fn phase_verifier_agrees_with_reports() {
    let workload = DynamicWorkload::new(
        Workload::new(GraphFamily::GnpAvgDeg(6.0), 100),
        4,
        ChurnSpec {
            edge_delete_frac: 0.1,
            edge_insert_frac: 0.1,
            node_delete_frac: 0.05,
            node_insert_frac: 0.05,
            arrival_degree: 2,
            ..ChurnSpec::none()
        },
    );
    // Reconstruct the phase graphs exactly as measure_dynamic does and
    // check MIS sizes line up with a valid selection on each.
    let report = measure_dynamic(
        &workload,
        AlgoKind::SleepingMis,
        11,
        Execution::Auto,
        RepairStrategy::Repair,
    )
    .expect("runs");
    assert!(report.all_valid());
    let mut graph = workload.initial_instance(11).expect("generates");
    let mut graphs = vec![graph.clone()];
    for phase in 1..workload.phases {
        let out = workload.advance(&graph, 11, phase).expect("advances");
        graph = out.graph;
        graphs.push(graph.clone());
    }
    // The reports' n/m match the reconstructed mutation sequence —
    // reproducibility of the churn schedule.
    for (g, p) in graphs.iter().zip(&report.phases) {
        assert_eq!(g.n(), p.report.n, "phase {} node count", p.phase);
        assert_eq!(g.m(), p.m, "phase {} edge count", p.phase);
    }
    // And a deliberately broken final phase is caught and named.
    let sets: Vec<Vec<bool>> = graphs.iter().map(|g| vec![false; g.n()]).collect();
    if graphs.last().map(|g| g.n() > 0).unwrap_or(false) {
        let err = verify_mis_phases(graphs.iter().zip(&sets).map(|(g, s)| (g, s.as_slice())))
            .expect_err("all-false set cannot be maximal on a nonempty graph");
        assert_eq!(err.phase, 0);
    }
}
