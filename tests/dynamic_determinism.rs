//! Dynamic-plan determinism: a churn plan's per-phase JSONL log and
//! aggregate report are byte-identical regardless of thread count and
//! shard size — cold *and* warm through the per-phase result store —
//! and the mutation schedule is a pure function of the seed stream.

use sleepy::fleet::sink::{write_dynamic_aggregate_json, PhaseJsonlSink};
use sleepy::fleet::{
    run_dynamic_plan_cached, AlgoKind, DynamicPlan, Execution, FleetConfig, ALL_STRATEGIES,
};
use sleepy::graph::{ChurnModel, ChurnSpec, GraphFamily};
use sleepy::store::Store;

fn churn_plan() -> DynamicPlan {
    DynamicPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[96],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        &ALL_STRATEGIES,
        3,
        ChurnSpec {
            edge_delete_frac: 0.08,
            edge_insert_frac: 0.08,
            node_delete_frac: 0.04,
            node_insert_frac: 0.04,
            arrival_degree: 2,
            model: ChurnModel::Adversarial,
        },
        4,
        0xC4A9_2217,
        Execution::Auto,
    )
}

/// Runs the plan (optionally against a store) and renders the per-phase
/// JSONL log plus the aggregate JSON to strings.
fn run_cached_at(threads: usize, shard_size: usize, store: Option<&mut Store>) -> (String, String) {
    let plan = churn_plan();
    let cfg = FleetConfig { threads, shard_size, ..FleetConfig::default() };
    let mut jsonl = PhaseJsonlSink::new(Vec::new());
    let out =
        run_dynamic_plan_cached(&plan, &cfg, &mut [&mut jsonl], store, true).expect("fleet runs");
    let report = out.report(&plan);
    let mut json = Vec::new();
    write_dynamic_aggregate_json(&mut json, &report).unwrap();
    (String::from_utf8(jsonl.into_inner()).unwrap(), String::from_utf8(json).unwrap())
}

fn run_at(threads: usize, shard_size: usize) -> (String, String) {
    run_cached_at(threads, shard_size, None)
}

#[test]
fn dynamic_outputs_byte_identical_across_threads_1_2_4() {
    let (jsonl1, json1) = run_at(1, 4);
    for threads in [2, 4] {
        let (jsonl, json) = run_at(threads, 4);
        assert_eq!(jsonl1, jsonl, "phase JSONL differs at {threads} threads");
        assert_eq!(json1, json, "dynamic aggregate JSON differs at {threads} threads");
    }
    // The log contains every (trial, phase) record, in order, all valid.
    let plan = churn_plan();
    let expected = plan.total_trials() as usize * 3;
    assert_eq!(jsonl1.lines().count(), expected);
    assert!(jsonl1.lines().all(|l| l.contains("\"valid\":true")));
    assert!(jsonl1.lines().next().unwrap().contains("\"job\":0,\"trial\":0"));
    assert!(jsonl1.lines().next().unwrap().contains("\"phase\":0"));
    assert!(jsonl1.lines().last().unwrap().contains("\"phase\":2"));
}

#[test]
fn dynamic_outputs_byte_identical_across_shard_sizes() {
    let (jsonl_a, json_a) = run_at(3, 1);
    let (jsonl_b, json_b) = run_at(3, 64);
    assert_eq!(jsonl_a, jsonl_b);
    assert_eq!(json_a, json_b);
}

#[test]
fn warm_dynamic_reruns_byte_identical_across_threads() {
    let dir = std::env::temp_dir().join(format!(
        "sleepy-dyn-warm-det-{}-{:?}",
        std::process::id(),
        // sleepy-lint: allow(no-wall-clock): temp-dir nonce only (root-crate test,
        // out of reach of the shared crates/fleet/tests/util shim).
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Cold run fills the per-phase store...
    let mut store = Store::open(&dir).unwrap();
    let (cold_jsonl, cold_json) = run_cached_at(2, 4, Some(&mut store));
    drop(store);
    // ...then warm reruns at every thread count reproduce it exactly,
    // executing nothing (checked via the plan's cache stats below).
    for threads in [1usize, 2, 4] {
        let mut store = Store::open(&dir).unwrap();
        let (jsonl, json) = run_cached_at(threads, 4, Some(&mut store));
        assert_eq!(cold_jsonl, jsonl, "warm phase JSONL differs at {threads} threads");
        assert_eq!(cold_json, json, "warm aggregate JSON differs at {threads} threads");
    }
    // Explicit zero-execution check on one warm pass.
    let plan = churn_plan();
    let mut store = Store::open(&dir).unwrap();
    let out = run_dynamic_plan_cached(
        &plan,
        &FleetConfig::with_threads(4),
        &mut [],
        Some(&mut store),
        true,
    )
    .unwrap();
    assert_eq!(out.cache.executed, 0, "warm rerun must execute zero trials");
    assert_eq!(out.cache.hits, plan.total_trials());
    std::fs::remove_dir_all(&dir).unwrap();
}
