//! Dynamic-plan determinism: a churn plan's per-phase JSONL log and
//! aggregate report are byte-identical regardless of thread count and
//! shard size, and the mutation schedule is a pure function of the seed
//! stream.

use sleepy::fleet::sink::{write_dynamic_aggregate_json, PhaseJsonlSink};
use sleepy::fleet::{
    run_dynamic_plan_with_sinks, AlgoKind, DynamicPlan, Execution, FleetConfig, RepairStrategy,
};
use sleepy::graph::{ChurnSpec, GraphFamily};

fn churn_plan() -> DynamicPlan {
    DynamicPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[96],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        &[RepairStrategy::Recompute, RepairStrategy::Repair],
        3,
        ChurnSpec {
            edge_delete_frac: 0.08,
            edge_insert_frac: 0.08,
            node_delete_frac: 0.04,
            node_insert_frac: 0.04,
            arrival_degree: 2,
        },
        4,
        0xC4A9_2217,
        Execution::Auto,
    )
}

/// Runs the plan and renders the per-phase JSONL log plus the aggregate
/// JSON to strings.
fn run_at(threads: usize, shard_size: usize) -> (String, String) {
    let plan = churn_plan();
    let cfg = FleetConfig { threads, shard_size, ..FleetConfig::default() };
    let mut jsonl = PhaseJsonlSink::new(Vec::new());
    let out = run_dynamic_plan_with_sinks(&plan, &cfg, &mut [&mut jsonl]).expect("fleet runs");
    let report = out.report(&plan);
    let mut json = Vec::new();
    write_dynamic_aggregate_json(&mut json, &report).unwrap();
    (String::from_utf8(jsonl.into_inner()).unwrap(), String::from_utf8(json).unwrap())
}

#[test]
fn dynamic_outputs_byte_identical_across_threads_1_2_4() {
    let (jsonl1, json1) = run_at(1, 4);
    for threads in [2, 4] {
        let (jsonl, json) = run_at(threads, 4);
        assert_eq!(jsonl1, jsonl, "phase JSONL differs at {threads} threads");
        assert_eq!(json1, json, "dynamic aggregate JSON differs at {threads} threads");
    }
    // The log contains every (trial, phase) record, in order, all valid.
    let plan = churn_plan();
    let expected = plan.total_trials() as usize * 3;
    assert_eq!(jsonl1.lines().count(), expected);
    assert!(jsonl1.lines().all(|l| l.contains("\"valid\":true")));
    assert!(jsonl1.lines().next().unwrap().contains("\"job\":0,\"trial\":0"));
    assert!(jsonl1.lines().next().unwrap().contains("\"phase\":0"));
    assert!(jsonl1.lines().last().unwrap().contains("\"phase\":2"));
}

#[test]
fn dynamic_outputs_byte_identical_across_shard_sizes() {
    let (jsonl_a, json_a) = run_at(3, 1);
    let (jsonl_b, json_b) = run_at(3, 64);
    assert_eq!(jsonl_a, jsonl_b);
    assert_eq!(json_a, json_b);
}
