//! Fleet determinism: a plan's outputs are byte-identical regardless of
//! thread count and shard size, and the parallel aggregates agree with a
//! hand-rolled serial loop over the same seeds.

use sleepy::fleet::sink::{write_aggregate_csv, write_aggregate_json, JsonlSink};
use sleepy::fleet::{
    measure_once, run_plan, run_plan_with_sinks, AlgoKind, Execution, FleetConfig, SeedStream,
    TrialPlan, Workload,
};
use sleepy::graph::GraphFamily;
use sleepy::stats::Summary;

fn sweep_plan() -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::GeometricAvgDeg(6.0), GraphFamily::Tree],
        &[64, 96],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        5,
        0xD37E_2817,
        Execution::Auto,
    )
}

/// Runs the plan at a given thread count and renders every output
/// artifact (JSONL trial log, aggregate JSON, aggregate CSV) to strings.
fn run_at(threads: usize, shard_size: usize) -> (String, String, String) {
    let plan = sweep_plan();
    let cfg = FleetConfig { threads, shard_size, ..FleetConfig::default() };
    let mut jsonl = JsonlSink::new(Vec::new());
    let out = run_plan_with_sinks(&plan, &cfg, &mut [&mut jsonl]).expect("fleet runs");
    let report = out.report(&plan);
    let mut json = Vec::new();
    write_aggregate_json(&mut json, &report).unwrap();
    let mut csv = Vec::new();
    write_aggregate_csv(&mut csv, &report).unwrap();
    (
        String::from_utf8(jsonl.into_inner()).unwrap(),
        String::from_utf8(json).unwrap(),
        String::from_utf8(csv).unwrap(),
    )
}

#[test]
fn outputs_byte_identical_across_threads_1_2_8() {
    let (jsonl1, json1, csv1) = run_at(1, 4);
    for threads in [2, 8] {
        let (jsonl, json, csv) = run_at(threads, 4);
        assert_eq!(jsonl1, jsonl, "JSONL differs at {threads} threads");
        assert_eq!(json1, json, "aggregate JSON differs at {threads} threads");
        assert_eq!(csv1, csv, "aggregate CSV differs at {threads} threads");
    }
    // Sanity: the log actually contains every trial.
    assert_eq!(jsonl1.lines().count(), sweep_plan().total_trials() as usize);
}

#[test]
fn outputs_byte_identical_across_shard_sizes() {
    let (jsonl_a, json_a, csv_a) = run_at(4, 1);
    let (jsonl_b, json_b, csv_b) = run_at(4, 64);
    assert_eq!(jsonl_a, jsonl_b);
    assert_eq!(json_a, json_b);
    assert_eq!(csv_a, csv_b);
}

#[test]
fn parallel_aggregates_match_serial_measure_path() {
    // A single-job plan, executed by the fleet at 8 threads...
    let workload = Workload::new(GraphFamily::GnpAvgDeg(6.0), 96);
    let trials = 12usize;
    let base_seed = 0xACC0_5EED;
    let plan = TrialPlan::new(base_seed).with_job(sleepy::fleet::JobSpec::new(
        workload,
        AlgoKind::SleepingMis,
        trials,
    ));
    let cfg = FleetConfig { threads: 8, shard_size: 2, ..FleetConfig::default() };
    let out = run_plan(&plan, &cfg).expect("fleet runs");
    let agg = &out.aggregates[0];

    // ...must agree with a serial loop over the very same seed stream.
    let seeds = SeedStream::new(base_seed);
    let mut avg_awake = Vec::new();
    let mut worst_round = Vec::new();
    let mut valid = 0u64;
    for t in 0..trials as u64 {
        let seed = seeds.trial_seed(0, t);
        let g = workload.instance(seed).expect("generates");
        let r = measure_once(&g, AlgoKind::SleepingMis, seed, Execution::Auto).expect("measures");
        avg_awake.push(r.summary.node_avg_awake);
        worst_round.push(r.summary.worst_round as f64);
        valid += u64::from(r.valid);
    }
    let serial_awake = Summary::of(&avg_awake);
    let serial_round = Summary::of(&worst_round);

    assert_eq!(agg.trials, trials as u64);
    assert_eq!(agg.valid_trials, valid);
    let fleet_awake = agg.node_avg_awake.to_summary();
    assert_eq!(fleet_awake.count, serial_awake.count);
    assert_eq!(fleet_awake.min, serial_awake.min);
    assert_eq!(fleet_awake.max, serial_awake.max);
    assert_eq!(fleet_awake.median, serial_awake.median);
    // Streaming (Welford/Chan) and batch means differ only in rounding.
    assert!((fleet_awake.mean - serial_awake.mean).abs() < 1e-12);
    assert!((fleet_awake.std_dev - serial_awake.std_dev).abs() < 1e-9);
    let fleet_round = agg.worst_round.to_summary();
    assert_eq!(fleet_round.min, serial_round.min);
    assert_eq!(fleet_round.max, serial_round.max);
    assert_eq!(fleet_round.median, serial_round.median);
    assert!((fleet_round.mean - serial_round.mean).abs() < 1e-9);

    // And the harness's measure_trials wrapper is the same code path.
    let harness_agg = sleepy::harness::measure_trials(
        &workload,
        sleepy::harness::AlgoKind::SleepingMis,
        trials,
        base_seed,
        sleepy::harness::Execution::Auto,
    )
    .expect("harness measures");
    assert_eq!(harness_agg.node_avg_awake, fleet_awake);
    assert_eq!(harness_agg.valid_fraction, valid as f64 / trials as f64);
}
