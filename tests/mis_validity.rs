//! Cross-algorithm MIS validity: every implemented algorithm must produce
//! a maximal independent set on every workload family (modulo Algorithm
//! 1's documented Monte-Carlo rank-tie failures, which we detect exactly).

use sleepy::graph::GraphFamily;
use sleepy::harness::{measure_once, AlgoKind, Execution, ALL_ALGOS};
use sleepy::mis::{depth_alg1, derive_all};

fn families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::GnpAvgDeg(6.0),
        GraphFamily::GnpLogDensity(1.5),
        GraphFamily::RandomRegular(4),
        GraphFamily::GeometricAvgDeg(6.0),
        GraphFamily::BarabasiAlbert(2),
        GraphFamily::Tree,
        GraphFamily::Cycle,
        GraphFamily::Path,
        GraphFamily::Star,
        GraphFamily::Grid2d,
        GraphFamily::Empty,
    ]
}

/// Whether this seed/instance has two nodes with identical K-bit ranks
/// (Algorithm 1's Monte-Carlo failure event).
fn has_rank_tie(n: usize, seed: u64) -> bool {
    let k = depth_alg1(n);
    let mut ranks: Vec<u128> = derive_all(seed, n).iter().map(|c| c.rank(k)).collect();
    ranks.sort_unstable();
    ranks.windows(2).any(|w| w[0] == w[1])
}

#[test]
fn every_algorithm_on_every_family() {
    for family in families() {
        for n in [31, 128] {
            let g = family.generate(n, 99).unwrap();
            for algo in ALL_ALGOS {
                for seed in 0..3u64 {
                    let r = measure_once(&g, algo, seed, Execution::Auto).unwrap();
                    if !r.valid {
                        // Only Algorithm 1 may fail, and only on a tie.
                        assert_eq!(algo, AlgoKind::SleepingMis, "{algo} invalid on {family}");
                        assert!(
                            has_rank_tie(g.n(), seed),
                            "{algo} invalid on {family} n={n} seed={seed} without a rank tie"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn mis_size_is_plausible() {
    // On a cycle, any MIS has between n/3 and n/2 nodes; on a clique
    // exactly 1; on an empty graph exactly n.
    let cycle = GraphFamily::Cycle.generate(99, 1).unwrap();
    let clique = GraphFamily::Clique.generate(40, 1).unwrap();
    let empty = GraphFamily::Empty.generate(25, 1).unwrap();
    for algo in ALL_ALGOS {
        let r = measure_once(&cycle, algo, 5, Execution::Auto).unwrap();
        assert!((33..=49).contains(&r.mis_size), "{algo} on C99: {}", r.mis_size);
        let r = measure_once(&clique, algo, 5, Execution::Auto).unwrap();
        assert_eq!(r.mis_size, 1, "{algo} on K40");
        let r = measure_once(&empty, algo, 5, Execution::Auto).unwrap();
        assert_eq!(r.mis_size, 25, "{algo} on empty");
    }
}

#[test]
fn failure_rate_stays_monte_carlo_small() {
    // Over many seeds at n = 128, Algorithm 1's failure probability is at
    // most ~ n^2/2 * 2^-K = 1/(2n); with 200 seeds we expect ~1 failure.
    let g = GraphFamily::GnpAvgDeg(6.0).generate(128, 123).unwrap();
    let mut failures = 0;
    for seed in 0..200u64 {
        let r = measure_once(&g, AlgoKind::SleepingMis, seed, Execution::Auto).unwrap();
        if !r.valid {
            failures += 1;
        }
    }
    assert!(failures <= 5, "implausibly many Monte-Carlo failures: {failures}/200");
}
