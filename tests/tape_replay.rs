//! Conformance: the committed tape corpus must replay byte-for-byte.
//!
//! Every `tests/tapes/*.jsonl` file pins one recorded engine exchange —
//! the full [`EngineInput`](sleepy_net::EngineInput) stream plus an
//! FNV-1a digest over the emitted outputs. Replaying feeds the inputs
//! through a fresh sans-io [`SleepyEngine`](sleepy_net::SleepyEngine)
//! with **no protocol code and no RNG**, so any engine semantic drift
//! (ordering, loss process, alarm handling, error paths) breaks the
//! digest here before it can silently shift experiment artifacts.

use sleepy_fleet::tape::{record_tape, replay_text};
use sleepy_fleet::AlgoKind;
use sleepy_graph::GraphFamily;
use sleepy_net::{replay_tape, EngineConfig, FaultPlan, Tape};

fn corpus() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/tapes");
    let mut tapes = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/tapes exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "jsonl") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable tape");
            tapes.push((name, text));
        }
    }
    tapes.sort();
    assert!(tapes.len() >= 10, "tape corpus went missing: {} files", tapes.len());
    tapes
}

#[test]
fn every_committed_tape_replays_byte_for_byte() {
    for (name, text) in corpus() {
        let tape = Tape::from_jsonl(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let outcome = replay_tape(&tape).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(outcome.output_count, tape.output_count, "{name}");
        assert_eq!(outcome.outputs_fnv, tape.outputs_fnv, "{name}");
        assert_eq!(outcome.error, tape.error, "{name}");
        // Serialization is canonical: parse → serialize reproduces the
        // committed file exactly, so the corpus can be regenerated
        // idempotently and diffs stay meaningful.
        assert_eq!(tape.to_jsonl(), text, "{name}: to_jsonl is not the file's bytes");
    }
}

#[test]
fn corpus_covers_the_required_edge_cases() {
    let tapes: Vec<(String, Tape)> = corpus()
        .into_iter()
        .map(|(name, text)| {
            let tape = Tape::from_jsonl(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, tape)
        })
        .collect();
    // One tape per algorithm family.
    for slug in ["alg1", "alg2", "luby-a", "luby-b", "greedy", "ghaffari"] {
        assert!(
            tapes.iter().any(|(_, t)| t.header.label.starts_with(&format!("{slug}/"))),
            "no tape for {slug}"
        );
    }
    // A message-loss tape and a recorded-failure (round cap with
    // never-terminating nodes) tape.
    assert!(tapes.iter().any(|(_, t)| t.header.loss_probability > 0.0), "no message-loss tape");
    assert!(
        tapes.iter().any(|(_, t)| t.error.as_deref().is_some_and(|e| e.contains("round cap"))),
        "no recorded-error tape"
    );
    // A burst-loss tape and a node-crash tape: faulted runs are
    // first-class conformance artifacts (the fault plan rides in the
    // header and replays without protocol code).
    assert!(
        tapes.iter().any(|(_, t)| matches!(t.header.fault, FaultPlan::Burst { .. })),
        "no burst-loss tape"
    );
    assert!(
        tapes.iter().any(|(_, t)| matches!(t.header.fault, FaultPlan::Crash { .. })),
        "no node-crash tape"
    );
}

#[test]
fn fresh_recordings_survive_the_full_cycle() {
    // record → serialize → parse → replay, end to end in-process, for a
    // sleeping-model algorithm and a baseline (with loss).
    let lossy = EngineConfig { loss_probability: 0.3, loss_seed: 5, ..EngineConfig::default() };
    for (algo, config) in [
        (AlgoKind::FastSleepingMis, EngineConfig::default()),
        (AlgoKind::Baseline(sleepy_baselines::BaselineKind::LubyA), lossy),
    ] {
        let tape = record_tape(algo, GraphFamily::GnpAvgDeg(6.0), 14, 21, &config)
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        let text = tape.to_jsonl();
        let parsed = Tape::from_jsonl(&text).unwrap_or_else(|e| panic!("{algo}: {e}"));
        assert_eq!(parsed.to_jsonl(), text, "{algo}: round-trip not canonical");
        let line = replay_text("fresh", &text).unwrap_or_else(|e| panic!("{algo}: {e}"));
        assert!(line.contains("OK"), "{algo}: {line}");
    }
}
