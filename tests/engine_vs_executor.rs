//! The repository's strongest internal correctness check: the
//! message-passing protocol on the sleeping-model engine and the
//! combinatorial executor must agree *exactly* — same MIS, same per-node
//! awake rounds, decide rounds, finish rounds, message counts, and the
//! same total/active round counts.
//!
//! Every engine run additionally streams through a full trace buffer and
//! a round-series sink, and the three schedule validators cross-check
//! trace ↔ metrics ↔ timeline — so each compared run is also internally
//! consistent, not merely equal to the executor.

use sleepy_graph::{generators, Graph, GraphFamily};
use sleepy_mis::{execute_sleeping_mis, run_sleeping_mis_with_sink, MisConfig};
use sleepy_net::{
    validate_series_against_metrics, validate_series_against_trace, validate_trace_against_metrics,
    EngineConfig, RoundSeries, Tee, TraceBuffer,
};

fn assert_exact_agreement(g: &Graph, cfg: MisConfig, label: &str) {
    let mut buffer = TraceBuffer::new(true);
    let mut series = RoundSeries::new();
    let mut tee = Tee::new(&mut buffer, &mut series);
    let engine = run_sleeping_mis_with_sink(g, cfg, &EngineConfig::default(), &mut tee)
        .unwrap_or_else(|e| panic!("{label}: engine failed: {e}"));
    let trace = buffer.into_trace();
    let rows = series.into_rows();
    validate_trace_against_metrics(&trace, &engine.metrics, true)
        .unwrap_or_else(|e| panic!("{label}: trace/metrics validator: {e}"));
    validate_series_against_metrics(&rows, &engine.metrics)
        .unwrap_or_else(|e| panic!("{label}: series/metrics validator: {e}"));
    validate_series_against_trace(&rows, &trace)
        .unwrap_or_else(|e| panic!("{label}: series/trace validator: {e}"));
    let exec =
        execute_sleeping_mis(g, cfg).unwrap_or_else(|e| panic!("{label}: executor failed: {e}"));
    assert_eq!(engine.in_mis, exec.in_mis, "{label}: MIS mismatch");
    for v in 0..g.n() {
        let em = &engine.metrics.per_node[v];
        assert_eq!(em.awake_rounds, exec.awake_rounds[v], "{label}: awake mismatch at node {v}");
        assert_eq!(
            em.finish_round,
            Some(exec.finish_rounds[v]),
            "{label}: finish mismatch at node {v}"
        );
        assert_eq!(
            em.decide_round,
            Some(exec.decide_rounds[v]),
            "{label}: decide mismatch at node {v}"
        );
        assert_eq!(
            em.messages_sent, exec.messages_sent[v],
            "{label}: messages mismatch at node {v}"
        );
    }
    assert_eq!(engine.metrics.total_rounds, exec.total_rounds, "{label}: total rounds");
    assert_eq!(engine.metrics.active_rounds, exec.active_rounds, "{label}: active rounds");
    let timeouts: Vec<u32> =
        exec.base_timeout.iter().enumerate().filter_map(|(v, &t)| t.then_some(v as u32)).collect();
    assert_eq!(engine.base_timeouts, timeouts, "{label}: timeout sets differ");
}

#[test]
fn agreement_on_structured_graphs() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("empty8", generators::empty(8).unwrap()),
        ("single", generators::empty(1).unwrap()),
        ("path2", generators::path(2).unwrap()),
        ("path9", generators::path(9).unwrap()),
        ("cycle12", generators::cycle(12).unwrap()),
        ("star10", generators::star(10).unwrap()),
        ("clique7", generators::clique(7).unwrap()),
        ("grid4x5", generators::grid2d(4, 5).unwrap()),
        ("bipartite", generators::complete_bipartite(4, 5).unwrap()),
    ];
    for (name, g) in &graphs {
        for seed in 0..3 {
            assert_exact_agreement(g, MisConfig::alg1(seed), &format!("alg1/{name}/{seed}"));
            assert_exact_agreement(g, MisConfig::alg2(seed), &format!("alg2/{name}/{seed}"));
        }
    }
}

#[test]
fn agreement_on_random_graphs() {
    for (i, fam) in [
        GraphFamily::GnpAvgDeg(4.0),
        GraphFamily::GnpAvgDeg(12.0),
        GraphFamily::RandomRegular(3),
        GraphFamily::BarabasiAlbert(2),
        GraphFamily::Tree,
        GraphFamily::GeometricAvgDeg(6.0),
    ]
    .iter()
    .enumerate()
    {
        for n in [17, 64, 130] {
            let g = fam.generate(n, 1000 + i as u64).unwrap();
            for seed in [1, 99] {
                assert_exact_agreement(
                    &g,
                    MisConfig::alg1(seed),
                    &format!("alg1/{fam}/n{n}/{seed}"),
                );
                assert_exact_agreement(
                    &g,
                    MisConfig::alg2(seed),
                    &format!("alg2/{fam}/n{n}/{seed}"),
                );
            }
        }
    }
}

#[test]
fn agreement_under_depth_overrides() {
    let g = generators::gnp(40, 0.12, 7).unwrap();
    for depth in [0, 1, 2, 5, 9] {
        let mut a1 = MisConfig::alg1(5);
        a1.depth_override = Some(depth);
        assert_exact_agreement(&g, a1, &format!("alg1/depth{depth}"));
        let mut a2 = MisConfig::alg2(5);
        a2.depth_override = Some(depth);
        assert_exact_agreement(&g, a2, &format!("alg2/depth{depth}"));
    }
}

#[test]
fn agreement_under_subgraph_only_send_policy() {
    use sleepy_mis::SendPolicy;
    for (i, fam) in [
        GraphFamily::GnpAvgDeg(6.0),
        GraphFamily::GeometricAvgDeg(6.0),
        GraphFamily::Clique,
        GraphFamily::Star,
    ]
    .iter()
    .enumerate()
    {
        let g = fam.generate(60, 777 + i as u64).unwrap();
        for seed in 0..3u64 {
            for mut cfg in [MisConfig::alg1(seed), MisConfig::alg2(seed)] {
                cfg.send_policy = SendPolicy::SubgraphOnly;
                assert_exact_agreement(&g, cfg, &format!("subgraph/{fam}/{seed}"));
            }
        }
    }
}

#[test]
fn subgraph_only_changes_messages_but_nothing_else() {
    use sleepy_mis::SendPolicy;
    let g = GraphFamily::GnpAvgDeg(8.0).generate(200, 4242).unwrap();
    for base in [MisConfig::alg1(9), MisConfig::alg2(9)] {
        let mut opt = base;
        opt.send_policy = SendPolicy::SubgraphOnly;
        let a = execute_sleeping_mis(&g, base).unwrap();
        let b = execute_sleeping_mis(&g, opt).unwrap();
        assert_eq!(a.in_mis, b.in_mis, "{:?}: MIS must not depend on send policy", base.variant);
        assert_eq!(a.awake_rounds, b.awake_rounds, "{:?}: awake rounds differ", base.variant);
        assert_eq!(a.finish_rounds, b.finish_rounds, "{:?}: finish rounds differ", base.variant);
        let ma: u64 = a.messages_sent.iter().sum();
        let mb: u64 = b.messages_sent.iter().sum();
        assert!(mb < ma, "{:?}: SubgraphOnly should save messages ({mb} !< {ma})", base.variant);
    }
}

#[test]
fn agreement_with_tiny_greedy_budget() {
    // Force base-case timeouts and verify both implementations agree on
    // the failure handling too.
    let g = generators::path(50).unwrap();
    for seed in 0..5 {
        let mut cfg = MisConfig::alg2(seed);
        cfg.greedy_c = 0.01;
        cfg.depth_override = Some(0);
        assert_exact_agreement(&g, cfg, &format!("timeout/{seed}"));
        let mut cfg = MisConfig::alg2(seed);
        cfg.greedy_c = 0.05;
        assert_exact_agreement(&g, cfg, &format!("timeout-deep/{seed}"));
    }
}
