//! Metric invariants that must hold for every run of every algorithm:
//! awake rounds bounded by lifetime, decide before finish, schedule bounds
//! respected, and energy accounting consistent with the metrics.

use sleepy::baselines::{run_baseline, ALL_BASELINES};
use sleepy::graph::generators;
use sleepy::mis::{
    depth_alg1, depth_alg2, execute_sleeping_mis, greedy_budget_rounds, run_sleeping_mis,
    MisConfig, Schedule,
};
use sleepy::net::{EnergyModel, EngineConfig, RunMetrics};

fn check_invariants(m: &RunMetrics, label: &str) {
    for (v, nm) in m.per_node.iter().enumerate() {
        let finish = nm.finish_round.unwrap_or_else(|| panic!("{label}: node {v} unfinished"));
        assert!(
            nm.awake_rounds <= finish + 1,
            "{label}: node {v} awake {} > lifetime {}",
            nm.awake_rounds,
            finish + 1
        );
        assert!(nm.awake_rounds >= 1, "{label}: node {v} never awake");
        let decide = nm.decide_round.unwrap_or_else(|| panic!("{label}: node {v} undecided"));
        assert!(decide <= finish, "{label}: node {v} decided after finishing");
        assert!(finish < m.total_rounds, "{label}: node {v} finish out of range");
    }
    assert!(m.active_rounds <= m.total_rounds, "{label}: active > total");
    assert_eq!(
        m.total_rounds,
        m.per_node.iter().map(|nm| nm.finish_round.unwrap() + 1).max().unwrap_or(0),
        "{label}: total_rounds is not the last finish"
    );
}

#[test]
fn sleeping_algorithm_invariants() {
    let g = generators::gnp(120, 0.06, 3).unwrap();
    for cfg in [MisConfig::alg1(5), MisConfig::alg2(5)] {
        let run = run_sleeping_mis(&g, cfg, &EngineConfig::default()).unwrap();
        check_invariants(&run.metrics, &format!("{:?}", cfg.variant));
    }
}

#[test]
fn baseline_invariants_and_always_awake() {
    let g = generators::gnp(100, 0.08, 4).unwrap();
    for kind in ALL_BASELINES {
        let run = run_baseline(&g, kind, 2, &EngineConfig::default()).unwrap();
        check_invariants(&run.metrics, &kind.to_string());
        // Baselines never sleep: awake == lifetime for every node. (Drops
        // can still occur — broadcasts to already-terminated neighbors.)
        for nm in &run.metrics.per_node {
            assert_eq!(nm.awake_rounds, nm.finish_round.unwrap() + 1, "{kind}");
        }
    }
}

#[test]
fn schedule_bounds_respected() {
    for n in [64usize, 256, 1024] {
        let g = generators::gnp_avg_degree(n, 8.0, n as u64).unwrap();
        let out1 = execute_sleeping_mis(&g, MisConfig::alg1(7)).unwrap();
        let k1 = depth_alg1(n);
        let t1 = Schedule::alg1().duration(k1).unwrap();
        assert!(out1.total_rounds <= t1, "alg1 n={n}: {} > T(K)={t1}", out1.total_rounds);
        let max_awake = out1.awake_rounds.iter().max().unwrap();
        assert!(*max_awake <= 3 * (k1 as u64 + 1), "alg1 n={n}: worst awake {max_awake} > 3(K+1)");

        let out2 = execute_sleeping_mis(&g, MisConfig::alg2(7)).unwrap();
        let k2 = depth_alg2(n);
        let budget = greedy_budget_rounds(n, 4.0);
        let t2 = Schedule::alg2(budget).duration(k2).unwrap();
        assert!(out2.total_rounds <= t2, "alg2 n={n}: {} > T(K2)={t2}", out2.total_rounds);
        let max_awake2 = out2.awake_rounds.iter().max().unwrap();
        assert!(
            *max_awake2 <= 3 * (k2 as u64 + 1) + budget,
            "alg2 n={n}: worst awake {max_awake2} > 3(K2+1)+budget"
        );
    }
}

#[test]
fn energy_accounting_consistent() {
    let g = generators::random_geometric(150, 0.12, 6).unwrap();
    let run = run_sleeping_mis(&g, MisConfig::alg2(9), &EngineConfig::default()).unwrap();
    let m = &run.metrics;
    // Awake-only energy equals total awake rounds.
    let awake_only = EnergyModel::awake_rounds_only().report(m);
    let total_awake: u64 = m.per_node.iter().map(|nm| nm.awake_rounds).sum();
    assert!((awake_only.total - total_awake as f64).abs() < 1e-6);
    // A model with zero costs yields zero energy.
    let zero = EnergyModel {
        idle_per_round: 0.0,
        sleep_per_round: 0.0,
        tx_per_message: 0.0,
        rx_per_message: 0.0,
    };
    assert_eq!(zero.report(m).total, 0.0);
    // Monotonicity: adding sleep cost can only increase energy.
    let with_sleep = EnergyModel { sleep_per_round: 0.5, ..EnergyModel::awake_rounds_only() };
    assert!(with_sleep.report(m).total >= awake_only.total);
}

#[test]
fn summary_consistency() {
    let g = generators::gnp(80, 0.1, 8).unwrap();
    let run = run_sleeping_mis(&g, MisConfig::alg1(4), &EngineConfig::default()).unwrap();
    let s = run.metrics.summary();
    assert_eq!(s.n, 80);
    assert!(s.node_avg_awake <= s.worst_awake as f64);
    assert!(s.node_avg_round <= s.worst_round as f64);
    assert!(s.worst_awake as f64 <= s.worst_round as f64 + 1.0);
    let total_sent: u64 = run.metrics.per_node.iter().map(|m| m.messages_sent).sum();
    let total_recv: u64 = run.metrics.per_node.iter().map(|m| m.messages_received).sum();
    let total_drop: u64 = run.metrics.per_node.iter().map(|m| m.messages_dropped).sum();
    assert_eq!(total_sent, total_recv + total_drop, "messages must be delivered or dropped");
}
