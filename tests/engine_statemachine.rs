//! Differential conformance: the sans-io state-machine driver against
//! the legacy round loop, across random graphs × protocols × drop rates.
//!
//! [`run_protocol_with_sink`] now drives a [`SleepyEngine`] state
//! machine; [`run_protocol_with_sink_legacy`] is the pre-refactor loop
//! kept verbatim as the differential oracle. For every sampled
//! configuration the two must agree on **everything observable**: the
//! full message-level trace, per-node metrics, the complexity summary
//! and the final outputs. On top of that, recording the run as a tape
//! and replaying it through a fresh engine must reproduce the same
//! metrics — the tape path shares no protocol code with the live run.
//!
//! [`run_protocol_with_sink`]: sleepy::net::run_protocol_with_sink
//! [`run_protocol_with_sink_legacy`]: sleepy::net::run_protocol_with_sink_legacy
//! [`SleepyEngine`]: sleepy::net::SleepyEngine

use proptest::prelude::*;
use sleepy::baselines::{Ghaffari, GreedyCrt, LubyA, LubyB};
use sleepy::graph::{Graph, NodeId};
use sleepy::mis::{MisConfig, PreparedMis, SleepingMisProtocol};
use sleepy::net::{
    replay_tape, run_protocol_taped, run_protocol_with_sink, run_protocol_with_sink_legacy,
    EngineConfig, NodeCtx, Protocol, Tape, TraceBuffer,
};

/// Strategy: an arbitrary simple graph as (n, edge set).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..max_edges.min(4 * n))
            .prop_map(move |pairs| {
                let edges: Vec<(NodeId, NodeId)> =
                    pairs.into_iter().filter(|(u, v)| u != v).collect();
                Graph::from_edges(n, edges).expect("filtered edges are valid")
            })
    })
}

/// Strategy: an engine config sweeping the loss process. Lossy runs get
/// `lossy_cap` as a round cap: message-waiting protocols (the baselines)
/// may legitimately stall forever once messages drop, and a capped run
/// that errors identically on both drivers is just as much a conformance
/// check as a finishing one. The paper's algorithms follow a fixed
/// rank-determined schedule, so they terminate under loss — but reach
/// Θ(n³) round *numbers*, hence their cap stays effectively unlimited.
fn arb_config(lossy_cap: u64) -> impl Strategy<Value = EngineConfig> {
    (0usize..3, 0u64..50).prop_map(move |(p, s)| {
        let loss = [0.0, 0.15, 0.5][p];
        EngineConfig {
            loss_probability: loss,
            loss_seed: s,
            max_rounds: if loss > 0.0 { lossy_cap } else { EngineConfig::default().max_rounds },
            ..EngineConfig::default()
        }
    })
}

/// Runs `factory`'s protocol through the state-machine driver, the
/// legacy loop, and the tape record/replay cycle, asserting byte-level
/// agreement everywhere.
fn assert_statemachine_conformance<P, F>(graph: &Graph, config: &EngineConfig, factory: F)
where
    P: Protocol,
    P::Output: PartialEq + std::fmt::Debug,
    F: FnMut(NodeId, &NodeCtx) -> P + Clone,
{
    let mut new_buf = TraceBuffer::new(true);
    let new = run_protocol_with_sink(graph, config, factory.clone(), &mut new_buf);
    let mut old_buf = TraceBuffer::new(true);
    let old = run_protocol_with_sink_legacy(graph, config, factory.clone(), &mut old_buf);
    match (new, old) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.outputs, b.outputs, "outputs diverge");
            assert_eq!(a.metrics, b.metrics, "metrics diverge");
            assert_eq!(a.metrics.summary(), b.metrics.summary(), "summaries diverge");
        }
        (a, b) => {
            let (a, b) = (a.map(|_| ()), b.map(|_| ()));
            assert_eq!(
                a.as_ref().err().map(ToString::to_string),
                b.as_ref().err().map(ToString::to_string),
                "error behavior diverges"
            );
        }
    }
    assert_eq!(new_buf.into_trace(), old_buf.into_trace(), "traces diverge");

    // Tape cycle: the recorded exchange must replay to the same digest
    // and metrics through a fresh engine, and serialize canonically.
    let mut tape_buf = TraceBuffer::new(true);
    let (result, tape) = run_protocol_taped(graph, config, factory, &mut tape_buf);
    let outcome = replay_tape(&tape).expect("fresh tape replays");
    if let Ok(run) = result {
        assert_eq!(outcome.metrics.as_ref(), Some(&run.metrics), "replay metrics diverge");
    } else {
        assert!(outcome.error.is_some(), "live error missing from replay");
    }
    let text = tape.to_jsonl();
    let reparsed = Tape::from_jsonl(&text).expect("canonical tape parses");
    assert_eq!(reparsed.to_jsonl(), text, "tape serialization not canonical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alg1_statemachine_matches_legacy(
        g in arb_graph(30),
        config in arb_config(EngineConfig::default().max_rounds),
        seed in 0u64..100,
    ) {
        let prepared = PreparedMis::new(g.n(), MisConfig::alg1(seed)).unwrap();
        assert_statemachine_conformance(&g, &config, |id, _| {
            SleepingMisProtocol::new(id, prepared.clone())
        });
    }

    #[test]
    fn alg2_statemachine_matches_legacy(
        g in arb_graph(24),
        config in arb_config(EngineConfig::default().max_rounds),
        seed in 0u64..100,
    ) {
        let prepared = PreparedMis::new(g.n(), MisConfig::alg2(seed)).unwrap();
        assert_statemachine_conformance(&g, &config, |id, _| {
            SleepingMisProtocol::new(id, prepared.clone())
        });
    }

    #[test]
    fn baselines_statemachine_matches_legacy(
        g in arb_graph(24),
        config in arb_config(500),
        seed in 0u64..100,
        which in 0usize..4,
    ) {
        match which {
            0 => assert_statemachine_conformance(&g, &config, |id, _| LubyA::new(id, seed)),
            1 => assert_statemachine_conformance(&g, &config, |id, _| LubyB::new(id, seed)),
            2 => assert_statemachine_conformance(&g, &config, |id, _| GreedyCrt::new(id, seed)),
            _ => assert_statemachine_conformance(&g, &config, |id, _| Ghaffari::new(id, seed)),
        }
    }

    #[test]
    fn error_runs_agree_under_round_caps(
        g in arb_graph(16),
        seed in 0u64..50,
        cap in 1u64..4,
    ) {
        // Tiny round caps force MaxRoundsExceeded on most instances;
        // driver and legacy loop must fail identically (same error, same
        // pre-failure trace) and the tape must reproduce the error.
        let config = EngineConfig { max_rounds: cap, ..EngineConfig::default() };
        assert_statemachine_conformance(&g, &config, |id, _| Ghaffari::new(id, seed));
    }
}
