//! Corollary 1 end-to-end: the sleeping algorithms compute exactly the
//! lexicographically-first MIS of their rank orders — cross-validated
//! against the independent sequential-greedy implementation in
//! `sleepy-verify`, and against the distributed Greedy-CRT baseline.

use sleepy::baselines::{run_baseline, BaselineKind, GreedyCrt};
use sleepy::graph::{generators, GraphFamily};
use sleepy::mis::{depth_alg1, depth_alg2, derive_all, execute_sleeping_mis, MisConfig};
use sleepy::net::EngineConfig;
use sleepy::verify::lexicographically_first_mis;

#[test]
fn alg1_equals_sequential_greedy_on_rank_order() {
    for family in [
        GraphFamily::GnpAvgDeg(8.0),
        GraphFamily::RandomRegular(4),
        GraphFamily::BarabasiAlbert(2),
        GraphFamily::Cycle,
    ] {
        for seed in 0..6u64 {
            let g = family.generate(200, seed * 17 + 1).unwrap();
            let n = g.n();
            let k = depth_alg1(n);
            let coins = derive_all(seed, n);
            let keys: Vec<u128> = (0..n).map(|v| coins[v].rank(k)).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                continue; // Monte-Carlo tie: Corollary 1's precondition fails
            }
            let out = execute_sleeping_mis(&g, MisConfig::alg1(seed)).unwrap();
            let reference = lexicographically_first_mis(&g, &keys);
            assert_eq!(out.in_mis, reference, "{family} seed {seed}");
        }
    }
}

#[test]
fn alg2_equals_sequential_greedy_on_composite_order() {
    for family in [GraphFamily::GnpAvgDeg(8.0), GraphFamily::GeometricAvgDeg(6.0)] {
        for seed in 0..6u64 {
            let g = family.generate(300, seed * 13 + 5).unwrap();
            let n = g.n();
            let out = execute_sleeping_mis(&g, MisConfig::alg2(seed)).unwrap();
            if out.base_timeout.iter().any(|&t| t) {
                continue; // budget exhaustion voids the equivalence
            }
            let k = depth_alg2(n);
            let coins = derive_all(seed, n);
            let keys: Vec<(u128, u64, u32)> = (0..n as u32)
                .map(|v| (coins[v as usize].rank(k), coins[v as usize].greedy_rank, v))
                .collect();
            let reference = lexicographically_first_mis(&g, &keys);
            assert_eq!(out.in_mis, reference, "{family} seed {seed}");
        }
    }
}

#[test]
fn greedy_crt_baseline_is_lexicographically_first() {
    // The distributed greedy baseline must equal the sequential greedy on
    // its own rank order (Fischer–Noever's lexicographically-first
    // property) — an independent implementation pair.
    for seed in 0..8u64 {
        let g = generators::gnp(150, 0.05, seed + 40).unwrap();
        let run =
            run_baseline(&g, BaselineKind::GreedyCrt, seed, &EngineConfig::default()).unwrap();
        let keys: Vec<(u64, u32)> =
            (0..g.n() as u32).map(|v| (GreedyCrt::rank_of(v, seed), v)).collect();
        let reference = lexicographically_first_mis(&g, &keys);
        assert_eq!(run.in_mis, reference, "seed {seed}");
    }
}
