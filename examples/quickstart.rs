//! Quickstart: compute an MIS with O(1) node-averaged awake complexity.
//!
//! Run with: `cargo run --release --example quickstart`

use sleepy::graph::generators;
use sleepy::mis::{execute_sleeping_mis, run_sleeping_mis, MisConfig};
use sleepy::net::EngineConfig;
use sleepy::verify::verify_mis;

fn main() {
    // A 10,000-node sparse random graph (average degree 8).
    let n = 10_000;
    let g = generators::gnp_avg_degree(n, 8.0, 42).expect("graph generates");
    println!("graph: n = {}, m = {}, max degree = {}", g.n(), g.m(), g.max_degree());

    // --- Algorithm 1 (SleepingMIS) on the fast exact executor ---
    let out = execute_sleeping_mis(&g, MisConfig::alg1(42)).expect("algorithm runs");
    verify_mis(&g, &out.in_mis).expect("output is a maximal independent set");
    let s = out.summary();
    println!("\nSleepingMIS (Algorithm 1):");
    println!("  MIS size                        : {}", out.mis_nodes().len());
    println!(
        "  node-averaged awake complexity  : {:.2} rounds  <- the O(1) headline",
        s.node_avg_awake
    );
    println!("  worst-case awake complexity     : {} rounds (O(log n))", s.worst_awake);
    println!("  worst-case round complexity     : {} rounds (O(n^3) schedule)", s.worst_round);

    // --- Algorithm 2 (Fast-SleepingMIS): polylog worst-case rounds ---
    let out2 = execute_sleeping_mis(&g, MisConfig::alg2(42)).expect("algorithm runs");
    verify_mis(&g, &out2.in_mis).expect("output is a maximal independent set");
    let s2 = out2.summary();
    println!("\nFast-SleepingMIS (Algorithm 2):");
    println!("  node-averaged awake complexity  : {:.2} rounds", s2.node_avg_awake);
    println!("  worst-case awake complexity     : {} rounds", s2.worst_awake);
    println!("  worst-case round complexity     : {} rounds (O(log^3.41 n))", s2.worst_round);

    // --- The same algorithm as a real message-passing protocol ---
    // (bit-identical results; use this when you need message/energy
    // accounting or want to watch the engine trace).
    let small = generators::gnp_avg_degree(500, 8.0, 42).expect("graph generates");
    let run = run_sleeping_mis(&small, MisConfig::alg1(42), &EngineConfig::default())
        .expect("protocol runs");
    let ps = run.metrics.summary();
    println!("\nprotocol engine on n = 500:");
    println!("  messages sent                   : {}", ps.total_messages);
    println!("  dropped at sleeping receivers   : {}", ps.dropped_messages);
    println!("  engine-processed (active) rounds: {} of {}", ps.active_rounds, ps.worst_round);
}
