//! Visualize the SleepingMIS recursion: the deterministic padded schedule
//! (the paper's Figure 1) and a populated tree from a real run, showing
//! the (3/4)^i pruning of Lemma 7 level by level.
//!
//! Run with: `cargo run --release --example recursion_tree`

use sleepy::graph::generators;
use sleepy::mis::{execute_sleeping_mis, schedule_tree, MisConfig, Schedule};

fn main() {
    // --- Part 1: the schedule tree with the paper's Figure 1 labels ---
    println!("Figure 1 of the paper (each vertex: first-reached, finish):\n");
    let nodes = schedule_tree(3, &Schedule::figure1(), 1).expect("schedule builds");
    for node in &nodes {
        let name = if node.path.is_empty() { "root" } else { node.path.as_str() };
        println!(
            "{:indent$}{name} (k={})  ({}, {})",
            "",
            node.k,
            node.first_reached,
            node.finish,
            indent = 2 * node.depth as usize
        );
    }

    // --- Part 2: a populated tree from a real execution ---
    let n = 300;
    let g = generators::gnp_avg_degree(n, 6.0, 11).expect("graph generates");
    let out = execute_sleeping_mis(&g, MisConfig::alg1(11)).expect("algorithm runs");
    println!("\nPopulated recursion tree on G({n}, avg deg 6), first 4 levels:");
    println!("{}", out.tree.render_ascii(4));

    println!("Level occupancy vs Lemma 7's (3/4)^i envelope:");
    println!("{:>6} {:>10} {:>12}", "depth", "measured", "(3/4)^i * n");
    for (i, z) in out.tree.z_profile().iter().enumerate().take(12) {
        println!("{:>6} {:>10} {:>12.1}", i, z, 0.75f64.powi(i as i32) * n as f64);
    }
    let s = out.summary();
    println!(
        "\nnode-averaged awake = {:.2} rounds — the geometric series 3·Σ(3/4)^i in action.",
        s.node_avg_awake
    );
}
