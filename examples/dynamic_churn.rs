//! Dynamic-workload demonstration: MIS repair under graph churn, now
//! with per-update incremental repair, adversarial churn, and the
//! persistent per-phase result cache.
//!
//! Runs a dynamic plan — graphs that suffer seeded edge flips and node
//! churn between phases — over recompute / batched-repair /
//! incremental strategies under both churn models, asserts every phase
//! of every trial verifies as an MIS, asserts the per-phase JSONL log
//! is byte-identical across thread counts, demonstrates that a warm
//! rerun against a result store executes **zero** trials while
//! reproducing the log byte for byte, and prints the per-churn-event
//! awake-cost comparison plus the amortized per-update accounting.
//!
//! ```text
//! cargo run --release --example dynamic_churn
//! ```

use sleepy::fleet::sink::PhaseJsonlSink;
use sleepy::fleet::{run_dynamic_plan_cached, AlgoKind, DynamicPlan, FleetConfig, ALL_STRATEGIES};
use sleepy::graph::{ChurnSpec, GraphFamily};
use sleepy::stats::TextTable;
use sleepy::store::Store;

fn main() {
    let churn = ChurnSpec {
        edge_delete_frac: 0.05,
        edge_insert_frac: 0.05,
        node_delete_frac: 0.02,
        node_insert_frac: 0.02,
        arrival_degree: 3,
        ..ChurnSpec::none()
    };
    let mut plan = DynamicPlan::new(0xC4A21);
    // Uniform churn sweeps every strategy; adversarial churn stresses
    // the incremental repairer where it hurts most.
    for spec in [churn, churn.adversarial()] {
        for strategy in ALL_STRATEGIES {
            plan.push(sleepy::fleet::DynamicJobSpec::new(
                sleepy::fleet::DynamicWorkload::new(
                    sleepy::fleet::Workload::new(GraphFamily::GnpAvgDeg(8.0), 384),
                    5,
                    spec,
                ),
                AlgoKind::SleepingMis,
                strategy,
                8,
            ));
        }
    }
    println!(
        "dynamic churn sweep: {} jobs, 5 phases per trial, {} trials total",
        plan.jobs.len(),
        plan.total_trials(),
    );

    // 1. Thread invariance of the uncached run.
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4] {
        let mut sink = PhaseJsonlSink::new(Vec::new());
        let cfg = FleetConfig { threads, shard_size: 2, ..FleetConfig::default() };
        let out = run_dynamic_plan_cached(&plan, &cfg, &mut [&mut sink], None, true).expect("runs");
        assert_eq!(out.total_trials, plan.total_trials());
        let jsonl = String::from_utf8(sink.into_inner()).expect("utf8");
        assert!(
            jsonl.lines().all(|l| l.contains("\"valid\":true")),
            "some phase failed MIS validity at {threads} threads"
        );
        match &reference {
            None => reference = Some(jsonl),
            Some(r) => assert_eq!(r, &jsonl, "phase JSONL differs at {threads} threads"),
        }
    }
    let reference = reference.expect("at least one run");

    // 2. Cold run into a store, then a warm rerun: zero executions,
    //    byte-identical log and aggregates.
    let dir = std::env::temp_dir().join(format!("sleepy-dynamic-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FleetConfig::with_threads(2);
    let mut store = Store::open(&dir).expect("store opens");
    // sleepy-lint: allow(no-wall-clock): example prints cold-vs-warm timings
    // to stderr for humans; no asserted bytes depend on them.
    let cold_start = std::time::Instant::now();
    let cold = run_dynamic_plan_cached(&plan, &cfg, &mut [], Some(&mut store), true).expect("cold");
    let cold_elapsed = cold_start.elapsed();
    assert_eq!(cold.cache.executed, plan.total_trials());
    drop(store);

    let mut store = Store::open(&dir).expect("store reopens");
    let mut warm_sink = PhaseJsonlSink::new(Vec::new());
    // sleepy-lint: allow(no-wall-clock): same diagnostic timing as above.
    let warm_start = std::time::Instant::now();
    let warm = run_dynamic_plan_cached(&plan, &cfg, &mut [&mut warm_sink], Some(&mut store), true)
        .expect("warm");
    let warm_elapsed = warm_start.elapsed();
    assert_eq!(warm.cache.executed, 0, "warm rerun must execute nothing");
    assert_eq!(warm.cache.hits, plan.total_trials());
    let warm_jsonl = String::from_utf8(warm_sink.into_inner()).expect("utf8");
    assert_eq!(reference, warm_jsonl, "warm rerun must reproduce the log byte-for-byte");
    let report = warm.report(&plan);
    let cold_json = serde_json::to_string(&cold.report(&plan)).expect("serializes");
    assert_eq!(cold_json, serde_json::to_string(&report).expect("serializes"));
    std::fs::remove_dir_all(&dir).ok();

    // 3. The comparison tables.
    let mut table = TextTable::new(vec![
        "job",
        "phase-0 awake",
        "churn-phase awake",
        "mean repair scope",
        "amortized/update",
    ]);
    for j in &report.jobs {
        let churn_awake = j.phases[1..].iter().map(|p| p.node_avg_awake.mean).sum::<f64>()
            / (j.phases.len() - 1) as f64;
        let scope = j.phases[1..].iter().map(|p| p.repair_scope_mean).sum::<f64>()
            / (j.phases.len() - 1) as f64;
        table.row(vec![
            j.label.clone(),
            format!("{:.3}", j.phases[0].node_avg_awake.mean),
            format!("{churn_awake:.4}"),
            format!("{scope:.1} / 384"),
            if j.updates.count > 0 {
                format!("{:.3} awake over {} upd", j.updates.awake_mean, j.updates.count)
            } else {
                "-".to_string()
            },
        ]);
    }
    println!("{}", table.render());
    println!("every phase of every trial verified as a valid MIS: YES");
    println!("per-phase JSONL byte-identical across 1/2/4 threads: YES");
    println!(
        "warm cached rerun: 0 of {} trials executed, byte-identical outputs \
         (cold {:.0?} -> warm {:.0?})",
        plan.total_trials(),
        cold_elapsed,
        warm_elapsed,
    );
}
