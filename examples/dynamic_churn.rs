//! Dynamic-workload demonstration: MIS repair under graph churn.
//!
//! Runs a dynamic plan — graphs that suffer seeded edge flips and node
//! churn between phases — over two graph families with both the
//! recompute-from-scratch and the restricted-neighborhood repair
//! strategies, asserts every phase of every trial verifies as an MIS,
//! asserts the per-phase JSONL log is byte-identical across thread
//! counts, and prints the per-churn-event awake-cost comparison.
//!
//! ```text
//! cargo run --release --example dynamic_churn
//! ```

use sleepy::fleet::sink::PhaseJsonlSink;
use sleepy::fleet::{
    run_dynamic_plan_with_sinks, AlgoKind, DynamicPlan, Execution, FleetConfig, RepairStrategy,
};
use sleepy::graph::{ChurnSpec, GraphFamily};
use sleepy::stats::TextTable;

fn main() {
    let churn = ChurnSpec {
        edge_delete_frac: 0.05,
        edge_insert_frac: 0.05,
        node_delete_frac: 0.02,
        node_insert_frac: 0.02,
        arrival_degree: 3,
    };
    let plan = DynamicPlan::sweep(
        &[GraphFamily::GnpAvgDeg(8.0), GraphFamily::GeometricAvgDeg(8.0)],
        &[512],
        &[AlgoKind::SleepingMis],
        &[RepairStrategy::Recompute, RepairStrategy::Repair],
        5,
        churn,
        10,
        0xC4A21,
        Execution::Auto,
    );
    println!(
        "dynamic churn sweep: {} jobs, {} phases per trial, {} trials total",
        plan.jobs.len(),
        5,
        plan.total_trials(),
    );

    let mut reference: Option<(String, String)> = None;
    let mut last_report = None;
    for threads in [1usize, 2, 4] {
        let mut sink = PhaseJsonlSink::new(Vec::new());
        let cfg = FleetConfig { threads, shard_size: 2, ..FleetConfig::default() };
        let out = run_dynamic_plan_with_sinks(&plan, &cfg, &mut [&mut sink]).expect("runs");
        assert_eq!(out.total_trials, plan.total_trials());
        let jsonl = String::from_utf8(sink.into_inner()).expect("utf8");
        assert!(
            jsonl.lines().all(|l| l.contains("\"valid\":true")),
            "some phase failed MIS validity at {threads} threads"
        );
        let report = out.report(&plan);
        let json = serde_json::to_string(&report).expect("serializes");
        match &reference {
            None => reference = Some((jsonl, json)),
            Some((ref_jsonl, ref_json)) => {
                assert_eq!(ref_jsonl, &jsonl, "phase JSONL differs at {threads} threads");
                assert_eq!(ref_json, &json, "aggregates differ at {threads} threads");
            }
        }
        last_report = Some(report);
    }
    let report = last_report.expect("at least one run");

    let mut table =
        TextTable::new(vec!["job", "phase-0 awake", "churn-phase awake", "mean repair scope"]);
    for j in &report.jobs {
        let churn_awake = j.phases[1..].iter().map(|p| p.node_avg_awake.mean).sum::<f64>()
            / (j.phases.len() - 1) as f64;
        let scope = j.phases[1..].iter().map(|p| p.repair_scope_mean).sum::<f64>()
            / (j.phases.len() - 1) as f64;
        table.row(vec![
            j.label.clone(),
            format!("{:.3}", j.phases[0].node_avg_awake.mean),
            format!("{churn_awake:.4}"),
            format!("{scope:.1} / 512"),
        ]);
    }
    println!("{}", table.render());
    println!("every phase of every trial verified as a valid MIS: YES");
    println!("per-phase JSONL and aggregates byte-identical across 1/2/4 threads: YES");
}
