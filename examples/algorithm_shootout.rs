//! Head-to-head comparison of all six implemented MIS algorithms on the
//! same instance — the measured version of the paper's Table 1.
//!
//! Run with: `cargo run --release --example algorithm_shootout`

use sleepy::graph::GraphFamily;
use sleepy::harness::{measure_once, Execution, ALL_ALGOS};

fn main() {
    for family in [
        GraphFamily::GnpAvgDeg(8.0),
        GraphFamily::GeometricAvgDeg(8.0),
        GraphFamily::BarabasiAlbert(3),
    ] {
        let n = 2048;
        let g = family.generate(n, 1234).expect("graph generates");
        println!(
            "\n=== {} (n = {}, m = {}, max degree = {}) ===",
            family,
            g.n(),
            g.m(),
            g.max_degree()
        );
        println!(
            "{:<18} {:>9} {:>11} {:>12} {:>12} {:>11} {:>7}",
            "algorithm",
            "MIS size",
            "avg awake",
            "worst awake",
            "worst round",
            "avg round",
            "valid"
        );
        for algo in ALL_ALGOS {
            let r = measure_once(&g, algo, 5, Execution::Auto).expect("measurement");
            println!(
                "{:<18} {:>9} {:>11.2} {:>12} {:>12} {:>11.1} {:>7}",
                r.algo,
                r.mis_size,
                r.summary.node_avg_awake,
                r.summary.worst_awake,
                r.summary.worst_round,
                r.summary.node_avg_round,
                if r.valid { "yes" } else { "NO" }
            );
        }
    }
    println!(
        "\nReading guide: the sleeping algorithms trade wall-clock rounds (their padded \
         schedules)\nfor awake rounds — the awake averages stay constant as n grows, which \
         is Theorem 1/2's claim.\nBaselines are awake for every round they live, so their \
         awake numbers equal their round numbers."
    );
}
