//! Writing your own sleeping-model protocol on the engine.
//!
//! The sleeping model is more general than MIS — this example implements a
//! duty-cycled heartbeat aggregation from scratch: leaf sensors wake every
//! `PERIOD` rounds to push a reading one hop toward a sink, sleeping in
//! between, and terminate after `REPORTS` readings. It shows the raw
//! `Protocol` API: send/receive phases, `SleepUntil`, and how messages to
//! sleeping nodes are dropped unless wake-ups are coordinated.
//!
//! Run with: `cargo run --release --example custom_protocol`

use sleepy::graph::generators;
use sleepy::net::{run_protocol, Action, EngineConfig, Incoming, NodeCtx, Outbox, Protocol};

const PERIOD: u64 = 100;
const REPORTS: u64 = 5;

/// Node 0 is the sink; all others are duty-cycled sensors on a star.
struct DutyCycled {
    is_sink: bool,
    readings_sent: u64,
    readings_heard: u64,
}

impl Protocol for DutyCycled {
    type Msg = u64;
    type Output = u64;

    fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<u64>) {
        // Sensors transmit exactly at their wake rounds.
        if !self.is_sink && ctx.round.is_multiple_of(PERIOD) {
            out.broadcast(ctx.round); // the "reading"
        }
    }

    fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<u64>]) -> Action {
        if self.is_sink {
            self.readings_heard += inbox.len() as u64;
            // The sink must be awake when the sensors report: it sleeps
            // between the coordinated wake rounds.
            if ctx.round >= PERIOD * (REPORTS - 1) {
                return Action::Terminate;
            }
            return Action::SleepUntil(ctx.round - ctx.round % PERIOD + PERIOD);
        }
        self.readings_sent += 1;
        if self.readings_sent >= REPORTS {
            return Action::Terminate;
        }
        Action::SleepUntil(ctx.round + PERIOD)
    }

    fn output(&self) -> Option<u64> {
        if self.is_sink {
            Some(self.readings_heard)
        } else {
            (self.readings_sent >= REPORTS).then_some(self.readings_sent)
        }
    }
}

fn main() {
    let sensors = 50;
    let g = generators::star(sensors + 1).expect("star builds");
    let run = run_protocol(&g, &EngineConfig::default(), |id, _ctx| DutyCycled {
        is_sink: id == 0,
        readings_sent: 0,
        readings_heard: 0,
    })
    .expect("protocol runs");

    let s = run.metrics.summary();
    println!("duty-cycled aggregation on a star of {sensors} sensors:");
    println!(
        "  sink heard {} readings (expected {})",
        run.outputs[0].unwrap(),
        sensors as u64 * REPORTS
    );
    println!("  wall-clock rounds       : {}", s.worst_round);
    println!("  engine-processed rounds : {} (the engine skips the sleep gaps)", s.active_rounds);
    println!("  mean awake rounds/node  : {:.1} of {} total", s.node_avg_awake, s.worst_round);
    println!("  dropped messages        : {}", s.dropped_messages);
    assert_eq!(run.outputs[0].unwrap(), sensors as u64 * REPORTS);
}
