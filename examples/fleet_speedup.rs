//! Thread-scaling demonstration of the fleet runtime on the acceptance
//! sweep: the six standard graph families × both paper algorithms × two
//! baselines, ≥ 1000 trials total. Runs the identical plan at several
//! thread counts, asserts the aggregate reports are byte-identical, and
//! prints the wall-clock scaling table.
//!
//! ```text
//! cargo run --release --example fleet_speedup
//! ```
//!
//! The output of a run of this example is checked in at
//! `docs/fleet_speedup.txt` (regenerate on your hardware; the speedup
//! column is only meaningful on a multi-core machine).

use sleepy::baselines::BaselineKind;
use sleepy::fleet::{run_plan, standard_families, AlgoKind, Execution, FleetConfig, TrialPlan};
use sleepy::stats::TextTable;

fn main() {
    let algos = [
        AlgoKind::SleepingMis,
        AlgoKind::FastSleepingMis,
        AlgoKind::Baseline(BaselineKind::LubyB),
        AlgoKind::Baseline(BaselineKind::GreedyCrt),
    ];
    let plan = TrialPlan::sweep(&standard_families(), &[256], &algos, 42, 0x5CA1E, Execution::Auto);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "fleet speedup sweep: {} jobs ({} families x {} algorithms), {} trials total, {} cores available",
        plan.jobs.len(),
        standard_families().len(),
        algos.len(),
        plan.total_trials(),
        cores,
    );

    let mut table = TextTable::new(vec!["threads", "wall clock", "speedup vs 1 thread"]);
    let mut baseline_secs = None;
    let mut reference_report = None;
    for threads in [1usize, 2, 4, 8] {
        let out = run_plan(&plan, &FleetConfig::with_threads(threads)).expect("fleet sweep runs");
        assert_eq!(out.total_trials, plan.total_trials());
        let report = serde_json::to_string(&out.report(&plan)).expect("serializes");
        match &reference_report {
            None => reference_report = Some(report),
            Some(reference) => {
                assert_eq!(reference, &report, "aggregates differ at {threads} threads");
            }
        }
        let secs = out.elapsed.as_secs_f64();
        let speedup = baseline_secs.get_or_insert(secs);
        table.row(vec![
            threads.to_string(),
            format!("{secs:.2} s"),
            format!("{:.2}x", *speedup / secs),
        ]);
    }
    println!("{}", table.render());
    println!("aggregate reports byte-identical across all thread counts: YES");
    if cores < 8 {
        println!(
            "note: only {cores} core(s) available here — rerun on an 8-core machine to see \
             the parallel speedup (the determinism assertion holds regardless)."
        );
    }
}
