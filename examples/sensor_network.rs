//! Sensor-network scenario: the paper's motivating application (§1.1).
//!
//! A fleet of battery-powered sensors scattered over a field must elect a
//! backbone (an MIS = a maximal set of non-interfering cluster heads).
//! Energy is the scarce resource: idle listening costs nearly as much as
//! transmitting, while deep sleep is almost free. This example builds a
//! random geometric graph (the standard sensor topology), runs the
//! sleeping algorithms and an always-awake baseline, and compares energy.
//!
//! Run with: `cargo run --release --example sensor_network`

use sleepy::baselines::{run_baseline, BaselineKind};
use sleepy::graph::generators;
use sleepy::mis::{run_sleeping_mis, MisConfig};
use sleepy::net::{EnergyModel, EngineConfig};
use sleepy::verify::verify_mis;

fn main() {
    // 1,500 sensors on the unit square, radio radius tuned for ~8 radio
    // neighbors each.
    let n = 1_500;
    let radius = generators::radius_for_avg_degree(n, 8.0);
    let g = generators::random_geometric(n, radius, 7).expect("field deploys");
    println!(
        "sensor field: {} nodes, radio radius {:.4}, {} links, max degree {}",
        g.n(),
        radius,
        g.m(),
        g.max_degree()
    );

    let ec = EngineConfig::default();
    // The paper's energy measure: every awake round costs 1 unit,
    // sleeping is free (idle ~ rx ~ tx on real radios).
    let energy = EnergyModel::awake_rounds_only();

    println!(
        "\n{:<22} {:>9} {:>12} {:>12} {:>14} {:>12}",
        "algorithm", "MIS size", "mean energy", "max energy", "awake (mean)", "rounds"
    );
    // Fast-SleepingMIS is the practical choice: O(1) awake average AND a
    // polylog wall-clock schedule.
    for (label, which) in [("Fast-SleepingMIS", 2), ("SleepingMIS", 1)] {
        let cfg = if which == 1 { MisConfig::alg1(99) } else { MisConfig::alg2(99) };
        let run = run_sleeping_mis(&g, cfg, &ec).expect("backbone elected");
        verify_mis(&g, &run.in_mis).expect("valid backbone");
        let rep = energy.report(&run.metrics);
        let s = run.metrics.summary();
        println!(
            "{:<22} {:>9} {:>12.2} {:>12.1} {:>14.2} {:>12}",
            label,
            run.in_mis.iter().filter(|&&b| b).count(),
            rep.mean,
            rep.max,
            s.node_avg_awake,
            s.worst_round
        );
    }
    // Baseline: Luby-B. In the traditional model every sensor's radio is
    // powered for the whole execution.
    let run = run_baseline(&g, BaselineKind::LubyB, 99, &ec).expect("baseline runs");
    verify_mis(&g, &run.in_mis).expect("valid backbone");
    let total_rounds = run.metrics.total_rounds;
    let mut strict = run.metrics.clone();
    for nm in &mut strict.per_node {
        nm.awake_rounds = total_rounds;
    }
    let rep = energy.report(&strict);
    let s = strict.summary();
    println!(
        "{:<22} {:>9} {:>12.2} {:>12.1} {:>14.2} {:>12}",
        "Luby-B (always awake)",
        run.in_mis.iter().filter(|&&b| b).count(),
        rep.mean,
        rep.max,
        s.node_avg_awake,
        total_rounds
    );

    println!(
        "\nEvery sensor sleeps through all but a handful of rounds under the sleeping \
         algorithms;\nthe backbone election costs each battery a constant number of \
         radio-on rounds, independent\nof the fleet size — that is the paper's O(1) \
         node-averaged awake complexity at work."
    );
}
