//! Self-checking demo of the persistent result cache (`sleepy-store`):
//! run the standard six-family sweep cold, rerun it warm, and assert
//! that the warm pass executed **zero** trials (hit rate 1.0) while
//! producing byte-identical aggregates.
//!
//! ```text
//! cargo run --release --example cached_sweep
//! ```

use sleepy::fleet::{
    run_plan_cached, standard_families, AlgoKind, Execution, FleetConfig, FleetOutput, TrialPlan,
};
use sleepy::store::Store;

fn render(plan: &TrialPlan, out: &FleetOutput) -> String {
    serde_json::to_string_pretty(&out.report(plan)).expect("report serializes")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("sleepy-cached-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The standard six-family suite — the shape of the paper sweeps.
    let plan = TrialPlan::sweep(
        &standard_families(),
        &[128],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        10,
        0x51EE9,
        Execution::Auto,
    );
    let total = plan.total_trials();
    let config = FleetConfig::default();
    println!(
        "cached sweep: {} jobs x {} families, {} trials total, store at {}",
        plan.jobs.len(),
        standard_families().len(),
        total,
        dir.display()
    );

    // Cold pass: everything executes, everything is recorded.
    let mut store = Store::open(&dir).expect("store opens");
    let cold = run_plan_cached(&plan, &config, &mut [], Some(&mut store), true).expect("cold run");
    println!(
        "cold: {} executed, {} hits, {} stored in {:.2?}",
        cold.cache.executed, cold.cache.hits, cold.cache.stored, cold.elapsed
    );
    assert_eq!(cold.cache.executed, total);
    assert_eq!(cold.cache.stored, total);
    drop(store);

    // Warm pass, from a freshly reopened store: zero executions.
    let mut store = Store::open(&dir).expect("store reopens");
    assert_eq!(store.len() as u64, total, "every trial persisted");
    let warm = run_plan_cached(&plan, &config, &mut [], Some(&mut store), true).expect("warm run");
    println!(
        "warm: {} executed, {} hits (hit rate {:.2}) in {:.2?}",
        warm.cache.executed,
        warm.cache.hits,
        warm.cache.hit_rate(),
        warm.elapsed
    );
    assert_eq!(warm.cache.executed, 0, "warm rerun must execute zero trials");
    assert_eq!(warm.cache.hit_rate(), 1.0);

    // The whole point: served-from-disk results are indistinguishable.
    assert_eq!(render(&plan, &cold), render(&plan, &warm), "aggregates must be byte-identical");
    let speedup = cold.elapsed.as_secs_f64() / warm.elapsed.as_secs_f64().max(1e-9);
    println!("aggregates byte-identical; warm pass ~{speedup:.0}x faster");

    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("cached_sweep: OK");
}
