//! # sleepy
//!
//! A from-scratch Rust reproduction of *"Sleeping is Efficient: MIS in
//! O(1)-rounds Node-averaged Awake Complexity"* (Chatterjee, Gmyr,
//! Pandurangan, PODC 2020) — the paper that introduced the **sleeping
//! model** of distributed computing and showed that maximal independent
//! set can be computed with **O(1) expected awake rounds per node**.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] — port-numbered CSR graphs and seeded workload generators
//!   (G(n,p), random regular, geometric/sensor, power-law, trees, …).
//! * [`net`] — the synchronous CONGEST **sleeping-model engine**:
//!   send/receive rounds, sleep/wake scheduling with message dropping,
//!   event-driven skipping of all-asleep rounds, awake/round metrics, and
//!   an energy model.
//! * [`mis`] — the paper's algorithms: `SleepingMIS` (Algorithm 1) and
//!   `Fast-SleepingMIS` (Algorithm 2), both as message-passing protocols
//!   and as an exact combinatorial executor, plus rank/schedule/recursion-
//!   tree tooling.
//! * [`baselines`] — Luby A/B, randomized greedy (CRT/Fischer–Noever) and
//!   Ghaffari'16, on the same engine for comparable metrics.
//! * [`verify`] — MIS checkers and lexicographically-first MIS references
//!   (Corollary 1).
//! * [`stats`] — summaries, mergeable streaming aggregates, quantile
//!   sketches, growth-shape fits, table rendering.
//! * [`store`] — the persistent content-addressed result store:
//!   append-only self-checking JSONL segments, crash-safe manifests,
//!   TTL/GC compaction, and multi-process merge.
//! * [`fleet`] — the parallel batch-execution runtime: declarative
//!   `JobSpec`/`TrialPlan` sweeps, SplitMix64 seed streams, a
//!   work-stealing worker pool with deterministic (thread-count
//!   invariant) output, JSONL/CSV/JSON result sinks, the persistent
//!   result cache, multi-process sharding, and the `fleet` CLI.
//! * [`harness`] — the experiments regenerating every table and figure of
//!   the paper, running their trial loops on the fleet.
//!
//! ## Quickstart
//!
//! ```
//! use sleepy::graph::generators;
//! use sleepy::mis::{execute_sleeping_mis, MisConfig};
//! use sleepy::verify::verify_mis;
//!
//! // A 10k-node sparse random graph.
//! let g = generators::gnp_avg_degree(10_000, 8.0, 42).unwrap();
//! // Run Algorithm 1 (exact executor; bit-identical to the protocol).
//! let out = execute_sleeping_mis(&g, MisConfig::alg1(42))?;
//! verify_mis(&g, &out.in_mis).expect("a valid MIS");
//!
//! let s = out.summary();
//! assert!(s.node_avg_awake < 12.0);           // O(1) average awake rounds
//! assert!(s.worst_awake <= 3 * (40 + 1));     // <= 3(K+1), K = ceil(3 log2 n)
//! # Ok::<(), sleepy::mis::MisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sleepy_baselines as baselines;
pub use sleepy_fleet as fleet;
pub use sleepy_graph as graph;
pub use sleepy_harness as harness;
pub use sleepy_mis as mis;
pub use sleepy_net as net;
pub use sleepy_stats as stats;
pub use sleepy_store as store;
pub use sleepy_verify as verify;
