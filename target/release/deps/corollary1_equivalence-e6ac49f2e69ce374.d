/root/repo/target/release/deps/corollary1_equivalence-e6ac49f2e69ce374.d: tests/corollary1_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libcorollary1_equivalence-e6ac49f2e69ce374.rmeta: tests/corollary1_equivalence.rs Cargo.toml

tests/corollary1_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
