/root/repo/target/release/deps/all_experiments-a934fcaaa6a03c45.d: crates/harness/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-a934fcaaa6a03c45: crates/harness/src/bin/all_experiments.rs

crates/harness/src/bin/all_experiments.rs:
