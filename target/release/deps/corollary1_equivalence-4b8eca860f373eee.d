/root/repo/target/release/deps/corollary1_equivalence-4b8eca860f373eee.d: tests/corollary1_equivalence.rs

/root/repo/target/release/deps/corollary1_equivalence-4b8eca860f373eee: tests/corollary1_equivalence.rs

tests/corollary1_equivalence.rs:
