/root/repo/target/release/deps/engine_vs_executor-ecffbfdcb87505c6.d: tests/engine_vs_executor.rs Cargo.toml

/root/repo/target/release/deps/libengine_vs_executor-ecffbfdcb87505c6.rmeta: tests/engine_vs_executor.rs Cargo.toml

tests/engine_vs_executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
