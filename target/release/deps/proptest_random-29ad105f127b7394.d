/root/repo/target/release/deps/proptest_random-29ad105f127b7394.d: tests/proptest_random.rs

/root/repo/target/release/deps/proptest_random-29ad105f127b7394: tests/proptest_random.rs

tests/proptest_random.rs:
