/root/repo/target/release/deps/ablation-3911a274ca8c5f3c.d: crates/harness/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-3911a274ca8c5f3c.rmeta: crates/harness/src/bin/ablation.rs Cargo.toml

crates/harness/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
