/root/repo/target/release/deps/lemmas-63cfbb1426791014.d: crates/harness/src/bin/lemmas.rs Cargo.toml

/root/repo/target/release/deps/liblemmas-63cfbb1426791014.rmeta: crates/harness/src/bin/lemmas.rs Cargo.toml

crates/harness/src/bin/lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
