/root/repo/target/release/deps/sleepy_mis-e221f520cab7e1d8.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libsleepy_mis-e221f520cab7e1d8.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

/root/repo/target/release/deps/libsleepy_mis-e221f520cab7e1d8.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/params.rs:
crates/core/src/protocol.rs:
crates/core/src/rank.rs:
crates/core/src/schedule.rs:
crates/core/src/tree.rs:
