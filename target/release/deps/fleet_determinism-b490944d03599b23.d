/root/repo/target/release/deps/fleet_determinism-b490944d03599b23.d: tests/fleet_determinism.rs Cargo.toml

/root/repo/target/release/deps/libfleet_determinism-b490944d03599b23.rmeta: tests/fleet_determinism.rs Cargo.toml

tests/fleet_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
