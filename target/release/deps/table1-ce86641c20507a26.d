/root/repo/target/release/deps/table1-ce86641c20507a26.d: crates/harness/src/bin/table1.rs

/root/repo/target/release/deps/table1-ce86641c20507a26: crates/harness/src/bin/table1.rs

crates/harness/src/bin/table1.rs:
