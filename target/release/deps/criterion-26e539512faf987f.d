/root/repo/target/release/deps/criterion-26e539512faf987f.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-26e539512faf987f.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
