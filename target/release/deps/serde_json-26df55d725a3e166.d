/root/repo/target/release/deps/serde_json-26df55d725a3e166.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/release/deps/serde_json-26df55d725a3e166: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
