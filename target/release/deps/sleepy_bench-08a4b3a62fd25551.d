/root/repo/target/release/deps/sleepy_bench-08a4b3a62fd25551.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/sleepy_bench-08a4b3a62fd25551: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
