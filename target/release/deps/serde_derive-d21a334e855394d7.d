/root/repo/target/release/deps/serde_derive-d21a334e855394d7.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-d21a334e855394d7: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
