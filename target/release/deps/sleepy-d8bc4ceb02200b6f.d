/root/repo/target/release/deps/sleepy-d8bc4ceb02200b6f.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsleepy-d8bc4ceb02200b6f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
