/root/repo/target/release/deps/robustness-a6d0a61b3ef30db8.d: crates/harness/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-a6d0a61b3ef30db8: crates/harness/src/bin/robustness.rs

crates/harness/src/bin/robustness.rs:
