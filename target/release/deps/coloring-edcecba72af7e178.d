/root/repo/target/release/deps/coloring-edcecba72af7e178.d: crates/harness/src/bin/coloring.rs

/root/repo/target/release/deps/coloring-edcecba72af7e178: crates/harness/src/bin/coloring.rs

crates/harness/src/bin/coloring.rs:
