/root/repo/target/release/deps/sleepy_fleet-42351b70be1e3ee4.d: crates/fleet/src/lib.rs crates/fleet/src/agg.rs crates/fleet/src/error.rs crates/fleet/src/measure.rs crates/fleet/src/pool.rs crates/fleet/src/run.rs crates/fleet/src/seed.rs crates/fleet/src/sink.rs crates/fleet/src/spec.rs crates/fleet/src/workload.rs

/root/repo/target/release/deps/sleepy_fleet-42351b70be1e3ee4: crates/fleet/src/lib.rs crates/fleet/src/agg.rs crates/fleet/src/error.rs crates/fleet/src/measure.rs crates/fleet/src/pool.rs crates/fleet/src/run.rs crates/fleet/src/seed.rs crates/fleet/src/sink.rs crates/fleet/src/spec.rs crates/fleet/src/workload.rs

crates/fleet/src/lib.rs:
crates/fleet/src/agg.rs:
crates/fleet/src/error.rs:
crates/fleet/src/measure.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/run.rs:
crates/fleet/src/seed.rs:
crates/fleet/src/sink.rs:
crates/fleet/src/spec.rs:
crates/fleet/src/workload.rs:
