/root/repo/target/release/deps/corollary1-b7d390d0a4af72c8.d: crates/harness/src/bin/corollary1.rs Cargo.toml

/root/repo/target/release/deps/libcorollary1-b7d390d0a4af72c8.rmeta: crates/harness/src/bin/corollary1.rs Cargo.toml

crates/harness/src/bin/corollary1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
