/root/repo/target/release/deps/rand-ca9c43262ddaf4c6.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-ca9c43262ddaf4c6.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
