/root/repo/target/release/deps/figure2-7f5400205a6e4449.d: crates/harness/src/bin/figure2.rs Cargo.toml

/root/repo/target/release/deps/libfigure2-7f5400205a6e4449.rmeta: crates/harness/src/bin/figure2.rs Cargo.toml

crates/harness/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
