/root/repo/target/release/deps/sleepy_bench-b47697f04d343a3d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_bench-b47697f04d343a3d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
