/root/repo/target/release/deps/fleet-ea97a175ffb632bd.d: crates/fleet/src/bin/fleet.rs

/root/repo/target/release/deps/fleet-ea97a175ffb632bd: crates/fleet/src/bin/fleet.rs

crates/fleet/src/bin/fleet.rs:
