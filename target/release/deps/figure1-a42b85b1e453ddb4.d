/root/repo/target/release/deps/figure1-a42b85b1e453ddb4.d: crates/harness/src/bin/figure1.rs Cargo.toml

/root/repo/target/release/deps/libfigure1-a42b85b1e453ddb4.rmeta: crates/harness/src/bin/figure1.rs Cargo.toml

crates/harness/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
