/root/repo/target/release/deps/sleepy-4c2d365617b295de.d: src/lib.rs

/root/repo/target/release/deps/sleepy-4c2d365617b295de: src/lib.rs

src/lib.rs:
