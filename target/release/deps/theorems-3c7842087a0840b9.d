/root/repo/target/release/deps/theorems-3c7842087a0840b9.d: crates/harness/src/bin/theorems.rs Cargo.toml

/root/repo/target/release/deps/libtheorems-3c7842087a0840b9.rmeta: crates/harness/src/bin/theorems.rs Cargo.toml

crates/harness/src/bin/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
