/root/repo/target/release/deps/serde_derive-52411d936f5db364.d: vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-52411d936f5db364.rmeta: vendor/serde_derive/src/lib.rs Cargo.toml

vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
