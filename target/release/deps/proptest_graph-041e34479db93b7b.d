/root/repo/target/release/deps/proptest_graph-041e34479db93b7b.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/release/deps/proptest_graph-041e34479db93b7b: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
