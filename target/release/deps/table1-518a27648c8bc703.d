/root/repo/target/release/deps/table1-518a27648c8bc703.d: crates/harness/src/bin/table1.rs

/root/repo/target/release/deps/table1-518a27648c8bc703: crates/harness/src/bin/table1.rs

crates/harness/src/bin/table1.rs:
