/root/repo/target/release/deps/sleepy_verify-50900efb4938bc2b.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/release/deps/libsleepy_verify-50900efb4938bc2b.rlib: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/release/deps/libsleepy_verify-50900efb4938bc2b.rmeta: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
