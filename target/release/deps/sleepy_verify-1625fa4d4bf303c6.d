/root/repo/target/release/deps/sleepy_verify-1625fa4d4bf303c6.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/release/deps/sleepy_verify-1625fa4d4bf303c6: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
