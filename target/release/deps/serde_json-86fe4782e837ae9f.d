/root/repo/target/release/deps/serde_json-86fe4782e837ae9f.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-86fe4782e837ae9f.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs Cargo.toml

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
