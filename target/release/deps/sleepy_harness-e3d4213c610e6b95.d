/root/repo/target/release/deps/sleepy_harness-e3d4213c610e6b95.d: crates/harness/src/lib.rs crates/harness/src/ablation.rs crates/harness/src/coloring.rs crates/harness/src/corollary1.rs crates/harness/src/energy.rs crates/harness/src/error.rs crates/harness/src/figure1.rs crates/harness/src/figure2.rs crates/harness/src/lemmas.rs crates/harness/src/measure.rs crates/harness/src/output.rs crates/harness/src/robustness.rs crates/harness/src/table1.rs crates/harness/src/theorems.rs crates/harness/src/workloads.rs

/root/repo/target/release/deps/libsleepy_harness-e3d4213c610e6b95.rlib: crates/harness/src/lib.rs crates/harness/src/ablation.rs crates/harness/src/coloring.rs crates/harness/src/corollary1.rs crates/harness/src/energy.rs crates/harness/src/error.rs crates/harness/src/figure1.rs crates/harness/src/figure2.rs crates/harness/src/lemmas.rs crates/harness/src/measure.rs crates/harness/src/output.rs crates/harness/src/robustness.rs crates/harness/src/table1.rs crates/harness/src/theorems.rs crates/harness/src/workloads.rs

/root/repo/target/release/deps/libsleepy_harness-e3d4213c610e6b95.rmeta: crates/harness/src/lib.rs crates/harness/src/ablation.rs crates/harness/src/coloring.rs crates/harness/src/corollary1.rs crates/harness/src/energy.rs crates/harness/src/error.rs crates/harness/src/figure1.rs crates/harness/src/figure2.rs crates/harness/src/lemmas.rs crates/harness/src/measure.rs crates/harness/src/output.rs crates/harness/src/robustness.rs crates/harness/src/table1.rs crates/harness/src/theorems.rs crates/harness/src/workloads.rs

crates/harness/src/lib.rs:
crates/harness/src/ablation.rs:
crates/harness/src/coloring.rs:
crates/harness/src/corollary1.rs:
crates/harness/src/energy.rs:
crates/harness/src/error.rs:
crates/harness/src/figure1.rs:
crates/harness/src/figure2.rs:
crates/harness/src/lemmas.rs:
crates/harness/src/measure.rs:
crates/harness/src/output.rs:
crates/harness/src/robustness.rs:
crates/harness/src/table1.rs:
crates/harness/src/theorems.rs:
crates/harness/src/workloads.rs:
