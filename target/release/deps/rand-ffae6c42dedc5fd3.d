/root/repo/target/release/deps/rand-ffae6c42dedc5fd3.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-ffae6c42dedc5fd3.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-ffae6c42dedc5fd3.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
