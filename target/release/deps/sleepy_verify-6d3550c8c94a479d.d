/root/repo/target/release/deps/sleepy_verify-6d3550c8c94a479d.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_verify-6d3550c8c94a479d.rmeta: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
