/root/repo/target/release/deps/proptest-087d3cfb5f4de496.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-087d3cfb5f4de496.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
