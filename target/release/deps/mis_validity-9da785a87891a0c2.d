/root/repo/target/release/deps/mis_validity-9da785a87891a0c2.d: tests/mis_validity.rs

/root/repo/target/release/deps/mis_validity-9da785a87891a0c2: tests/mis_validity.rs

tests/mis_validity.rs:
