/root/repo/target/release/deps/corollary1-e68c793655f1ca4d.d: crates/harness/src/bin/corollary1.rs Cargo.toml

/root/repo/target/release/deps/libcorollary1-e68c793655f1ca4d.rmeta: crates/harness/src/bin/corollary1.rs Cargo.toml

crates/harness/src/bin/corollary1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
