/root/repo/target/release/deps/sleepy-d5f9e1a3c459de42.d: src/lib.rs

/root/repo/target/release/deps/libsleepy-d5f9e1a3c459de42.rlib: src/lib.rs

/root/repo/target/release/deps/libsleepy-d5f9e1a3c459de42.rmeta: src/lib.rs

src/lib.rs:
