/root/repo/target/release/deps/table1-ec2a1c960e50738a.d: crates/harness/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-ec2a1c960e50738a.rmeta: crates/harness/src/bin/table1.rs Cargo.toml

crates/harness/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
