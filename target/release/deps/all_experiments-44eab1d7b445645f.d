/root/repo/target/release/deps/all_experiments-44eab1d7b445645f.d: crates/harness/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/release/deps/liball_experiments-44eab1d7b445645f.rmeta: crates/harness/src/bin/all_experiments.rs Cargo.toml

crates/harness/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
