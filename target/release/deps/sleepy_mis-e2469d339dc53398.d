/root/repo/target/release/deps/sleepy_mis-e2469d339dc53398.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_mis-e2469d339dc53398.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/params.rs:
crates/core/src/protocol.rs:
crates/core/src/rank.rs:
crates/core/src/schedule.rs:
crates/core/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
