/root/repo/target/release/deps/serde_json-1eebb88e518adc53.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/release/deps/libserde_json-1eebb88e518adc53.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/release/deps/libserde_json-1eebb88e518adc53.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
