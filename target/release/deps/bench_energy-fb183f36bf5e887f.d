/root/repo/target/release/deps/bench_energy-fb183f36bf5e887f.d: crates/bench/benches/bench_energy.rs Cargo.toml

/root/repo/target/release/deps/libbench_energy-fb183f36bf5e887f.rmeta: crates/bench/benches/bench_energy.rs Cargo.toml

crates/bench/benches/bench_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
