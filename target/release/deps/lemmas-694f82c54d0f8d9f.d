/root/repo/target/release/deps/lemmas-694f82c54d0f8d9f.d: crates/harness/src/bin/lemmas.rs

/root/repo/target/release/deps/lemmas-694f82c54d0f8d9f: crates/harness/src/bin/lemmas.rs

crates/harness/src/bin/lemmas.rs:
