/root/repo/target/release/deps/proptest-2c1f71eb3274905d.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-2c1f71eb3274905d.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
