/root/repo/target/release/deps/bench_graphgen-858b90dffbb1d4ef.d: crates/bench/benches/bench_graphgen.rs Cargo.toml

/root/repo/target/release/deps/libbench_graphgen-858b90dffbb1d4ef.rmeta: crates/bench/benches/bench_graphgen.rs Cargo.toml

crates/bench/benches/bench_graphgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
