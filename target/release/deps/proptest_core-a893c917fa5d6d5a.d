/root/repo/target/release/deps/proptest_core-a893c917fa5d6d5a.d: crates/core/tests/proptest_core.rs Cargo.toml

/root/repo/target/release/deps/libproptest_core-a893c917fa5d6d5a.rmeta: crates/core/tests/proptest_core.rs Cargo.toml

crates/core/tests/proptest_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
