/root/repo/target/release/deps/sleepy_bench-17971aa1df72e06d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsleepy_bench-17971aa1df72e06d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsleepy_bench-17971aa1df72e06d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
