/root/repo/target/release/deps/fleet_determinism-497176873e6998c1.d: tests/fleet_determinism.rs

/root/repo/target/release/deps/fleet_determinism-497176873e6998c1: tests/fleet_determinism.rs

tests/fleet_determinism.rs:
