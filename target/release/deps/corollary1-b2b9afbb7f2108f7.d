/root/repo/target/release/deps/corollary1-b2b9afbb7f2108f7.d: crates/harness/src/bin/corollary1.rs

/root/repo/target/release/deps/corollary1-b2b9afbb7f2108f7: crates/harness/src/bin/corollary1.rs

crates/harness/src/bin/corollary1.rs:
