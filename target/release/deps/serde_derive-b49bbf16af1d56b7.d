/root/repo/target/release/deps/serde_derive-b49bbf16af1d56b7.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-b49bbf16af1d56b7.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
