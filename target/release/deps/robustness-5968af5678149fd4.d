/root/repo/target/release/deps/robustness-5968af5678149fd4.d: crates/harness/src/bin/robustness.rs Cargo.toml

/root/repo/target/release/deps/librobustness-5968af5678149fd4.rmeta: crates/harness/src/bin/robustness.rs Cargo.toml

crates/harness/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
