/root/repo/target/release/deps/figure1-7e6ae58673b7b4b7.d: crates/harness/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-7e6ae58673b7b4b7: crates/harness/src/bin/figure1.rs

crates/harness/src/bin/figure1.rs:
