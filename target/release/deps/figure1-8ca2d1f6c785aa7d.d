/root/repo/target/release/deps/figure1-8ca2d1f6c785aa7d.d: crates/harness/src/bin/figure1.rs Cargo.toml

/root/repo/target/release/deps/libfigure1-8ca2d1f6c785aa7d.rmeta: crates/harness/src/bin/figure1.rs Cargo.toml

crates/harness/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
