/root/repo/target/release/deps/sleepy_graph-a7583fc0a51b30f8.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/geometric.rs crates/graph/src/generators/gnp.rs crates/graph/src/generators/powerlaw.rs crates/graph/src/generators/regular.rs crates/graph/src/generators/structured.rs crates/graph/src/generators/trees.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/ops.rs

/root/repo/target/release/deps/sleepy_graph-a7583fc0a51b30f8: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/geometric.rs crates/graph/src/generators/gnp.rs crates/graph/src/generators/powerlaw.rs crates/graph/src/generators/regular.rs crates/graph/src/generators/structured.rs crates/graph/src/generators/trees.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/ops.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/error.rs:
crates/graph/src/generators/mod.rs:
crates/graph/src/generators/geometric.rs:
crates/graph/src/generators/gnp.rs:
crates/graph/src/generators/powerlaw.rs:
crates/graph/src/generators/regular.rs:
crates/graph/src/generators/structured.rs:
crates/graph/src/generators/trees.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/ops.rs:
