/root/repo/target/release/deps/corollary1-575e57fc6aed2b52.d: crates/harness/src/bin/corollary1.rs

/root/repo/target/release/deps/corollary1-575e57fc6aed2b52: crates/harness/src/bin/corollary1.rs

crates/harness/src/bin/corollary1.rs:
