/root/repo/target/release/deps/bench_figure1-b03172e2f2e954fc.d: crates/bench/benches/bench_figure1.rs Cargo.toml

/root/repo/target/release/deps/libbench_figure1-b03172e2f2e954fc.rmeta: crates/bench/benches/bench_figure1.rs Cargo.toml

crates/bench/benches/bench_figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
