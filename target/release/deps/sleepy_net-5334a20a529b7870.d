/root/repo/target/release/deps/sleepy_net-5334a20a529b7870.d: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_net-5334a20a529b7870.rmeta: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/error.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/protocol.rs:
crates/net/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
