/root/repo/target/release/deps/proptest_random-8adadc2d6a6286f7.d: tests/proptest_random.rs Cargo.toml

/root/repo/target/release/deps/libproptest_random-8adadc2d6a6286f7.rmeta: tests/proptest_random.rs Cargo.toml

tests/proptest_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
