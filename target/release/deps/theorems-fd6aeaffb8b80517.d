/root/repo/target/release/deps/theorems-fd6aeaffb8b80517.d: crates/harness/src/bin/theorems.rs

/root/repo/target/release/deps/theorems-fd6aeaffb8b80517: crates/harness/src/bin/theorems.rs

crates/harness/src/bin/theorems.rs:
