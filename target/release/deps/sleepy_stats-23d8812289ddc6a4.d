/root/repo/target/release/deps/sleepy_stats-23d8812289ddc6a4.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_stats-23d8812289ddc6a4.rmeta: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
