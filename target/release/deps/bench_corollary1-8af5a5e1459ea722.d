/root/repo/target/release/deps/bench_corollary1-8af5a5e1459ea722.d: crates/bench/benches/bench_corollary1.rs Cargo.toml

/root/repo/target/release/deps/libbench_corollary1-8af5a5e1459ea722.rmeta: crates/bench/benches/bench_corollary1.rs Cargo.toml

crates/bench/benches/bench_corollary1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
