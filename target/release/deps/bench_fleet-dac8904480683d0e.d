/root/repo/target/release/deps/bench_fleet-dac8904480683d0e.d: crates/bench/benches/bench_fleet.rs Cargo.toml

/root/repo/target/release/deps/libbench_fleet-dac8904480683d0e.rmeta: crates/bench/benches/bench_fleet.rs Cargo.toml

crates/bench/benches/bench_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
