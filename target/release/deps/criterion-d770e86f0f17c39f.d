/root/repo/target/release/deps/criterion-d770e86f0f17c39f.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-d770e86f0f17c39f.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
