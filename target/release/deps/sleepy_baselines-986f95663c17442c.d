/root/repo/target/release/deps/sleepy_baselines-986f95663c17442c.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/release/deps/sleepy_baselines-986f95663c17442c: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
