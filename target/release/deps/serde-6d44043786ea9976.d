/root/repo/target/release/deps/serde-6d44043786ea9976.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs Cargo.toml

/root/repo/target/release/deps/libserde-6d44043786ea9976.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs Cargo.toml

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
