/root/repo/target/release/deps/proptest_graph-dfc5d9dffbb30a01.d: crates/graph/tests/proptest_graph.rs Cargo.toml

/root/repo/target/release/deps/libproptest_graph-dfc5d9dffbb30a01.rmeta: crates/graph/tests/proptest_graph.rs Cargo.toml

crates/graph/tests/proptest_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
