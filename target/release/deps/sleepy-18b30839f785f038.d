/root/repo/target/release/deps/sleepy-18b30839f785f038.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsleepy-18b30839f785f038.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
