/root/repo/target/release/deps/sleepy_stats-b1e07191cd511c78.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libsleepy_stats-b1e07191cd511c78.rlib: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libsleepy_stats-b1e07191cd511c78.rmeta: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
