/root/repo/target/release/deps/sleepy_baselines-c8b1a449b5686cc5.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_baselines-c8b1a449b5686cc5.rmeta: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
