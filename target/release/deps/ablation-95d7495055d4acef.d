/root/repo/target/release/deps/ablation-95d7495055d4acef.d: crates/harness/src/bin/ablation.rs Cargo.toml

/root/repo/target/release/deps/libablation-95d7495055d4acef.rmeta: crates/harness/src/bin/ablation.rs Cargo.toml

crates/harness/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
