/root/repo/target/release/deps/rand-d5432c64fc7e3771.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-d5432c64fc7e3771.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
