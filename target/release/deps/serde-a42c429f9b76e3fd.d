/root/repo/target/release/deps/serde-a42c429f9b76e3fd.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/libserde-a42c429f9b76e3fd.rlib: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/libserde-a42c429f9b76e3fd.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
