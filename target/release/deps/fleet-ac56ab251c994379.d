/root/repo/target/release/deps/fleet-ac56ab251c994379.d: crates/fleet/src/bin/fleet.rs Cargo.toml

/root/repo/target/release/deps/libfleet-ac56ab251c994379.rmeta: crates/fleet/src/bin/fleet.rs Cargo.toml

crates/fleet/src/bin/fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
