/root/repo/target/release/deps/energy-609029bcacbb6131.d: crates/harness/src/bin/energy.rs

/root/repo/target/release/deps/energy-609029bcacbb6131: crates/harness/src/bin/energy.rs

crates/harness/src/bin/energy.rs:
