/root/repo/target/release/deps/rand-5798b39c6c493ad4.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-5798b39c6c493ad4: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
