/root/repo/target/release/deps/bench_scaling-e1a7a90d05cdc801.d: crates/bench/benches/bench_scaling.rs Cargo.toml

/root/repo/target/release/deps/libbench_scaling-e1a7a90d05cdc801.rmeta: crates/bench/benches/bench_scaling.rs Cargo.toml

crates/bench/benches/bench_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
