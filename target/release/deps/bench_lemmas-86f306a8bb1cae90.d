/root/repo/target/release/deps/bench_lemmas-86f306a8bb1cae90.d: crates/bench/benches/bench_lemmas.rs Cargo.toml

/root/repo/target/release/deps/libbench_lemmas-86f306a8bb1cae90.rmeta: crates/bench/benches/bench_lemmas.rs Cargo.toml

crates/bench/benches/bench_lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
