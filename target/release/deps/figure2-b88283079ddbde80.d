/root/repo/target/release/deps/figure2-b88283079ddbde80.d: crates/harness/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-b88283079ddbde80: crates/harness/src/bin/figure2.rs

crates/harness/src/bin/figure2.rs:
