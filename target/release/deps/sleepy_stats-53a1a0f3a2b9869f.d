/root/repo/target/release/deps/sleepy_stats-53a1a0f3a2b9869f.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/sleepy_stats-53a1a0f3a2b9869f: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
