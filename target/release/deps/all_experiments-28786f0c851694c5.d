/root/repo/target/release/deps/all_experiments-28786f0c851694c5.d: crates/harness/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-28786f0c851694c5: crates/harness/src/bin/all_experiments.rs

crates/harness/src/bin/all_experiments.rs:
