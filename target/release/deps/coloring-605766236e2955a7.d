/root/repo/target/release/deps/coloring-605766236e2955a7.d: crates/harness/src/bin/coloring.rs

/root/repo/target/release/deps/coloring-605766236e2955a7: crates/harness/src/bin/coloring.rs

crates/harness/src/bin/coloring.rs:
