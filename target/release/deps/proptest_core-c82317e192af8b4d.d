/root/repo/target/release/deps/proptest_core-c82317e192af8b4d.d: crates/core/tests/proptest_core.rs

/root/repo/target/release/deps/proptest_core-c82317e192af8b4d: crates/core/tests/proptest_core.rs

crates/core/tests/proptest_core.rs:
