/root/repo/target/release/deps/ablation-0c1c6d349aadb328.d: crates/harness/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-0c1c6d349aadb328: crates/harness/src/bin/ablation.rs

crates/harness/src/bin/ablation.rs:
