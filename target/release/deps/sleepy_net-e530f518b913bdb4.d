/root/repo/target/release/deps/sleepy_net-e530f518b913bdb4.d: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libsleepy_net-e530f518b913bdb4.rlib: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libsleepy_net-e530f518b913bdb4.rmeta: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/error.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/protocol.rs:
crates/net/src/trace.rs:
