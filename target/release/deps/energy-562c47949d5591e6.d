/root/repo/target/release/deps/energy-562c47949d5591e6.d: crates/harness/src/bin/energy.rs

/root/repo/target/release/deps/energy-562c47949d5591e6: crates/harness/src/bin/energy.rs

crates/harness/src/bin/energy.rs:
