/root/repo/target/release/deps/sleepy_bench-7b0d5658e6e12dc1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_bench-7b0d5658e6e12dc1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
