/root/repo/target/release/deps/robustness-15c784eaf0f35eaf.d: crates/harness/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-15c784eaf0f35eaf: crates/harness/src/bin/robustness.rs

crates/harness/src/bin/robustness.rs:
