/root/repo/target/release/deps/figure2-3c3b6df993594b64.d: crates/harness/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-3c3b6df993594b64: crates/harness/src/bin/figure2.rs

crates/harness/src/bin/figure2.rs:
