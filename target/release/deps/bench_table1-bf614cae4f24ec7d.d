/root/repo/target/release/deps/bench_table1-bf614cae4f24ec7d.d: crates/bench/benches/bench_table1.rs Cargo.toml

/root/repo/target/release/deps/libbench_table1-bf614cae4f24ec7d.rmeta: crates/bench/benches/bench_table1.rs Cargo.toml

crates/bench/benches/bench_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
