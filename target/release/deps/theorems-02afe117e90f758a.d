/root/repo/target/release/deps/theorems-02afe117e90f758a.d: crates/harness/src/bin/theorems.rs

/root/repo/target/release/deps/theorems-02afe117e90f758a: crates/harness/src/bin/theorems.rs

crates/harness/src/bin/theorems.rs:
