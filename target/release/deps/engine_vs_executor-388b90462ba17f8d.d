/root/repo/target/release/deps/engine_vs_executor-388b90462ba17f8d.d: tests/engine_vs_executor.rs

/root/repo/target/release/deps/engine_vs_executor-388b90462ba17f8d: tests/engine_vs_executor.rs

tests/engine_vs_executor.rs:
