/root/repo/target/release/deps/coloring-aef570531f2aa0bb.d: crates/harness/src/bin/coloring.rs Cargo.toml

/root/repo/target/release/deps/libcoloring-aef570531f2aa0bb.rmeta: crates/harness/src/bin/coloring.rs Cargo.toml

crates/harness/src/bin/coloring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
