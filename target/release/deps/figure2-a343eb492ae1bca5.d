/root/repo/target/release/deps/figure2-a343eb492ae1bca5.d: crates/harness/src/bin/figure2.rs Cargo.toml

/root/repo/target/release/deps/libfigure2-a343eb492ae1bca5.rmeta: crates/harness/src/bin/figure2.rs Cargo.toml

crates/harness/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
