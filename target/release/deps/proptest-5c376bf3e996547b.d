/root/repo/target/release/deps/proptest-5c376bf3e996547b.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-5c376bf3e996547b: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
