/root/repo/target/release/deps/fleet-36e94a9da4a21c7a.d: crates/fleet/src/bin/fleet.rs

/root/repo/target/release/deps/fleet-36e94a9da4a21c7a: crates/fleet/src/bin/fleet.rs

crates/fleet/src/bin/fleet.rs:
