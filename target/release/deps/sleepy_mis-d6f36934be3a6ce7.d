/root/repo/target/release/deps/sleepy_mis-d6f36934be3a6ce7.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

/root/repo/target/release/deps/sleepy_mis-d6f36934be3a6ce7: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/params.rs:
crates/core/src/protocol.rs:
crates/core/src/rank.rs:
crates/core/src/schedule.rs:
crates/core/src/tree.rs:
