/root/repo/target/release/deps/fleet-c581b1970c3f8b71.d: crates/fleet/src/bin/fleet.rs Cargo.toml

/root/repo/target/release/deps/libfleet-c581b1970c3f8b71.rmeta: crates/fleet/src/bin/fleet.rs Cargo.toml

crates/fleet/src/bin/fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
