/root/repo/target/release/deps/metrics_consistency-71395585a0c085ab.d: tests/metrics_consistency.rs Cargo.toml

/root/repo/target/release/deps/libmetrics_consistency-71395585a0c085ab.rmeta: tests/metrics_consistency.rs Cargo.toml

tests/metrics_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
