/root/repo/target/release/deps/theorems-3c1a0ed7bda67fc6.d: crates/harness/src/bin/theorems.rs Cargo.toml

/root/repo/target/release/deps/libtheorems-3c1a0ed7bda67fc6.rmeta: crates/harness/src/bin/theorems.rs Cargo.toml

crates/harness/src/bin/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
