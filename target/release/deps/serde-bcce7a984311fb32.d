/root/repo/target/release/deps/serde-bcce7a984311fb32.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs Cargo.toml

/root/repo/target/release/deps/libserde-bcce7a984311fb32.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs Cargo.toml

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
