/root/repo/target/release/deps/sleepy_baselines-cecee6321b81609a.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/release/deps/libsleepy_baselines-cecee6321b81609a.rlib: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/release/deps/libsleepy_baselines-cecee6321b81609a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
