/root/repo/target/release/deps/figure1-f7daba681c475fcb.d: crates/harness/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-f7daba681c475fcb: crates/harness/src/bin/figure1.rs

crates/harness/src/bin/figure1.rs:
