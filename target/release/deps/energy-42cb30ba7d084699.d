/root/repo/target/release/deps/energy-42cb30ba7d084699.d: crates/harness/src/bin/energy.rs Cargo.toml

/root/repo/target/release/deps/libenergy-42cb30ba7d084699.rmeta: crates/harness/src/bin/energy.rs Cargo.toml

crates/harness/src/bin/energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
