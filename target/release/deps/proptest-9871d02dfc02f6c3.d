/root/repo/target/release/deps/proptest-9871d02dfc02f6c3.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9871d02dfc02f6c3.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9871d02dfc02f6c3.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
