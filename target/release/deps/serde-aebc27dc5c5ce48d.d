/root/repo/target/release/deps/serde-aebc27dc5c5ce48d.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/serde-aebc27dc5c5ce48d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
