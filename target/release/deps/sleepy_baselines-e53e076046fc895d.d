/root/repo/target/release/deps/sleepy_baselines-e53e076046fc895d.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_baselines-e53e076046fc895d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
