/root/repo/target/release/deps/bench_engine-14524482e99e2a4d.d: crates/bench/benches/bench_engine.rs Cargo.toml

/root/repo/target/release/deps/libbench_engine-14524482e99e2a4d.rmeta: crates/bench/benches/bench_engine.rs Cargo.toml

crates/bench/benches/bench_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
