/root/repo/target/release/deps/coloring-f463a786df493b1e.d: crates/harness/src/bin/coloring.rs Cargo.toml

/root/repo/target/release/deps/libcoloring-f463a786df493b1e.rmeta: crates/harness/src/bin/coloring.rs Cargo.toml

crates/harness/src/bin/coloring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
