/root/repo/target/release/deps/sleepy_stats-541e8adc4ea11f11.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

/root/repo/target/release/deps/libsleepy_stats-541e8adc4ea11f11.rmeta: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
