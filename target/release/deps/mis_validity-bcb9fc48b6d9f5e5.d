/root/repo/target/release/deps/mis_validity-bcb9fc48b6d9f5e5.d: tests/mis_validity.rs Cargo.toml

/root/repo/target/release/deps/libmis_validity-bcb9fc48b6d9f5e5.rmeta: tests/mis_validity.rs Cargo.toml

tests/mis_validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
