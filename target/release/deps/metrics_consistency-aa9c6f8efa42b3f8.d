/root/repo/target/release/deps/metrics_consistency-aa9c6f8efa42b3f8.d: tests/metrics_consistency.rs

/root/repo/target/release/deps/metrics_consistency-aa9c6f8efa42b3f8: tests/metrics_consistency.rs

tests/metrics_consistency.rs:
