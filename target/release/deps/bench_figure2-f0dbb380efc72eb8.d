/root/repo/target/release/deps/bench_figure2-f0dbb380efc72eb8.d: crates/bench/benches/bench_figure2.rs Cargo.toml

/root/repo/target/release/deps/libbench_figure2-f0dbb380efc72eb8.rmeta: crates/bench/benches/bench_figure2.rs Cargo.toml

crates/bench/benches/bench_figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
