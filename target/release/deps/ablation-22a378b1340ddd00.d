/root/repo/target/release/deps/ablation-22a378b1340ddd00.d: crates/harness/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-22a378b1340ddd00: crates/harness/src/bin/ablation.rs

crates/harness/src/bin/ablation.rs:
