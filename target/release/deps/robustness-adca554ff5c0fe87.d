/root/repo/target/release/deps/robustness-adca554ff5c0fe87.d: crates/harness/src/bin/robustness.rs Cargo.toml

/root/repo/target/release/deps/librobustness-adca554ff5c0fe87.rmeta: crates/harness/src/bin/robustness.rs Cargo.toml

crates/harness/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
