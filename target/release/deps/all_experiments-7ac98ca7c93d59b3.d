/root/repo/target/release/deps/all_experiments-7ac98ca7c93d59b3.d: crates/harness/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/release/deps/liball_experiments-7ac98ca7c93d59b3.rmeta: crates/harness/src/bin/all_experiments.rs Cargo.toml

crates/harness/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
