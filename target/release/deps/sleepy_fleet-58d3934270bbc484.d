/root/repo/target/release/deps/sleepy_fleet-58d3934270bbc484.d: crates/fleet/src/lib.rs crates/fleet/src/agg.rs crates/fleet/src/error.rs crates/fleet/src/measure.rs crates/fleet/src/pool.rs crates/fleet/src/run.rs crates/fleet/src/seed.rs crates/fleet/src/sink.rs crates/fleet/src/spec.rs crates/fleet/src/workload.rs

/root/repo/target/release/deps/libsleepy_fleet-58d3934270bbc484.rlib: crates/fleet/src/lib.rs crates/fleet/src/agg.rs crates/fleet/src/error.rs crates/fleet/src/measure.rs crates/fleet/src/pool.rs crates/fleet/src/run.rs crates/fleet/src/seed.rs crates/fleet/src/sink.rs crates/fleet/src/spec.rs crates/fleet/src/workload.rs

/root/repo/target/release/deps/libsleepy_fleet-58d3934270bbc484.rmeta: crates/fleet/src/lib.rs crates/fleet/src/agg.rs crates/fleet/src/error.rs crates/fleet/src/measure.rs crates/fleet/src/pool.rs crates/fleet/src/run.rs crates/fleet/src/seed.rs crates/fleet/src/sink.rs crates/fleet/src/spec.rs crates/fleet/src/workload.rs

crates/fleet/src/lib.rs:
crates/fleet/src/agg.rs:
crates/fleet/src/error.rs:
crates/fleet/src/measure.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/run.rs:
crates/fleet/src/seed.rs:
crates/fleet/src/sink.rs:
crates/fleet/src/spec.rs:
crates/fleet/src/workload.rs:
