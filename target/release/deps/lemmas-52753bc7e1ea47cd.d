/root/repo/target/release/deps/lemmas-52753bc7e1ea47cd.d: crates/harness/src/bin/lemmas.rs

/root/repo/target/release/deps/lemmas-52753bc7e1ea47cd: crates/harness/src/bin/lemmas.rs

crates/harness/src/bin/lemmas.rs:
