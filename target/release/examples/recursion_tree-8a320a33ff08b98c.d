/root/repo/target/release/examples/recursion_tree-8a320a33ff08b98c.d: examples/recursion_tree.rs

/root/repo/target/release/examples/recursion_tree-8a320a33ff08b98c: examples/recursion_tree.rs

examples/recursion_tree.rs:
