/root/repo/target/release/examples/sensor_network-63315eb7757e53eb.d: examples/sensor_network.rs Cargo.toml

/root/repo/target/release/examples/libsensor_network-63315eb7757e53eb.rmeta: examples/sensor_network.rs Cargo.toml

examples/sensor_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
