/root/repo/target/release/examples/quickstart-d5b455de38e8e01b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d5b455de38e8e01b: examples/quickstart.rs

examples/quickstart.rs:
