/root/repo/target/release/examples/quickstart-53feb9463d2106d0.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-53feb9463d2106d0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
