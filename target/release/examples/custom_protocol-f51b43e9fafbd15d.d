/root/repo/target/release/examples/custom_protocol-f51b43e9fafbd15d.d: examples/custom_protocol.rs

/root/repo/target/release/examples/custom_protocol-f51b43e9fafbd15d: examples/custom_protocol.rs

examples/custom_protocol.rs:
