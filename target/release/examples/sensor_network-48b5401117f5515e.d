/root/repo/target/release/examples/sensor_network-48b5401117f5515e.d: examples/sensor_network.rs

/root/repo/target/release/examples/sensor_network-48b5401117f5515e: examples/sensor_network.rs

examples/sensor_network.rs:
