/root/repo/target/release/examples/algorithm_shootout-c03d9dde68e25a97.d: examples/algorithm_shootout.rs

/root/repo/target/release/examples/algorithm_shootout-c03d9dde68e25a97: examples/algorithm_shootout.rs

examples/algorithm_shootout.rs:
