/root/repo/target/release/examples/recursion_tree-0d0164a20f9167b8.d: examples/recursion_tree.rs Cargo.toml

/root/repo/target/release/examples/librecursion_tree-0d0164a20f9167b8.rmeta: examples/recursion_tree.rs Cargo.toml

examples/recursion_tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
