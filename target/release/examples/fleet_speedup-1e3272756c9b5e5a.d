/root/repo/target/release/examples/fleet_speedup-1e3272756c9b5e5a.d: examples/fleet_speedup.rs

/root/repo/target/release/examples/fleet_speedup-1e3272756c9b5e5a: examples/fleet_speedup.rs

examples/fleet_speedup.rs:
