/root/repo/target/release/examples/fleet_speedup-e73eefec65cf5fd7.d: examples/fleet_speedup.rs Cargo.toml

/root/repo/target/release/examples/libfleet_speedup-e73eefec65cf5fd7.rmeta: examples/fleet_speedup.rs Cargo.toml

examples/fleet_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
