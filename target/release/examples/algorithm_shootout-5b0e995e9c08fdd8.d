/root/repo/target/release/examples/algorithm_shootout-5b0e995e9c08fdd8.d: examples/algorithm_shootout.rs Cargo.toml

/root/repo/target/release/examples/libalgorithm_shootout-5b0e995e9c08fdd8.rmeta: examples/algorithm_shootout.rs Cargo.toml

examples/algorithm_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
