/root/repo/target/release/examples/custom_protocol-7891d7be7f990023.d: examples/custom_protocol.rs Cargo.toml

/root/repo/target/release/examples/libcustom_protocol-7891d7be7f990023.rmeta: examples/custom_protocol.rs Cargo.toml

examples/custom_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
