/root/repo/target/debug/examples/quickstart-19e6cce723d6612c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-19e6cce723d6612c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
