/root/repo/target/debug/examples/recursion_tree-4e5f193b8c49574e.d: examples/recursion_tree.rs Cargo.toml

/root/repo/target/debug/examples/librecursion_tree-4e5f193b8c49574e.rmeta: examples/recursion_tree.rs Cargo.toml

examples/recursion_tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
