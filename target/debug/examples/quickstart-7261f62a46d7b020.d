/root/repo/target/debug/examples/quickstart-7261f62a46d7b020.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-7261f62a46d7b020.rmeta: examples/quickstart.rs

examples/quickstart.rs:
