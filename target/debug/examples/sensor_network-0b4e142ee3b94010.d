/root/repo/target/debug/examples/sensor_network-0b4e142ee3b94010.d: examples/sensor_network.rs

/root/repo/target/debug/examples/libsensor_network-0b4e142ee3b94010.rmeta: examples/sensor_network.rs

examples/sensor_network.rs:
