/root/repo/target/debug/examples/sensor_network-a19a4c25180b6b52.d: examples/sensor_network.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_network-a19a4c25180b6b52.rmeta: examples/sensor_network.rs Cargo.toml

examples/sensor_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
