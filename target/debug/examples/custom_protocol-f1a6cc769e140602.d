/root/repo/target/debug/examples/custom_protocol-f1a6cc769e140602.d: examples/custom_protocol.rs

/root/repo/target/debug/examples/libcustom_protocol-f1a6cc769e140602.rmeta: examples/custom_protocol.rs

examples/custom_protocol.rs:
