/root/repo/target/debug/examples/recursion_tree-24875cc9495c491d.d: examples/recursion_tree.rs

/root/repo/target/debug/examples/recursion_tree-24875cc9495c491d: examples/recursion_tree.rs

examples/recursion_tree.rs:
