/root/repo/target/debug/examples/algorithm_shootout-23c2186a5d51a986.d: examples/algorithm_shootout.rs

/root/repo/target/debug/examples/libalgorithm_shootout-23c2186a5d51a986.rmeta: examples/algorithm_shootout.rs

examples/algorithm_shootout.rs:
