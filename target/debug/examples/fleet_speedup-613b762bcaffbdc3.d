/root/repo/target/debug/examples/fleet_speedup-613b762bcaffbdc3.d: examples/fleet_speedup.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_speedup-613b762bcaffbdc3.rmeta: examples/fleet_speedup.rs Cargo.toml

examples/fleet_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
