/root/repo/target/debug/examples/fleet_speedup-17209a7b5b747d2b.d: examples/fleet_speedup.rs

/root/repo/target/debug/examples/fleet_speedup-17209a7b5b747d2b: examples/fleet_speedup.rs

examples/fleet_speedup.rs:
