/root/repo/target/debug/examples/fleet_speedup-f0fed56e314afb79.d: examples/fleet_speedup.rs

/root/repo/target/debug/examples/libfleet_speedup-f0fed56e314afb79.rmeta: examples/fleet_speedup.rs

examples/fleet_speedup.rs:
