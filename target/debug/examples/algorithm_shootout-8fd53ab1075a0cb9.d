/root/repo/target/debug/examples/algorithm_shootout-8fd53ab1075a0cb9.d: examples/algorithm_shootout.rs

/root/repo/target/debug/examples/algorithm_shootout-8fd53ab1075a0cb9: examples/algorithm_shootout.rs

examples/algorithm_shootout.rs:
