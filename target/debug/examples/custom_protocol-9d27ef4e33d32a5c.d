/root/repo/target/debug/examples/custom_protocol-9d27ef4e33d32a5c.d: examples/custom_protocol.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_protocol-9d27ef4e33d32a5c.rmeta: examples/custom_protocol.rs Cargo.toml

examples/custom_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
