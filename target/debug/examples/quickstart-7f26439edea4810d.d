/root/repo/target/debug/examples/quickstart-7f26439edea4810d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7f26439edea4810d: examples/quickstart.rs

examples/quickstart.rs:
