/root/repo/target/debug/examples/sensor_network-f2c1a76fb76e5609.d: examples/sensor_network.rs

/root/repo/target/debug/examples/sensor_network-f2c1a76fb76e5609: examples/sensor_network.rs

examples/sensor_network.rs:
