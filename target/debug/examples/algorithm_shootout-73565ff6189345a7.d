/root/repo/target/debug/examples/algorithm_shootout-73565ff6189345a7.d: examples/algorithm_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libalgorithm_shootout-73565ff6189345a7.rmeta: examples/algorithm_shootout.rs Cargo.toml

examples/algorithm_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
