/root/repo/target/debug/examples/custom_protocol-740a24d4e4945577.d: examples/custom_protocol.rs

/root/repo/target/debug/examples/custom_protocol-740a24d4e4945577: examples/custom_protocol.rs

examples/custom_protocol.rs:
