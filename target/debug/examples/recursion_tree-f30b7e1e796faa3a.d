/root/repo/target/debug/examples/recursion_tree-f30b7e1e796faa3a.d: examples/recursion_tree.rs

/root/repo/target/debug/examples/librecursion_tree-f30b7e1e796faa3a.rmeta: examples/recursion_tree.rs

examples/recursion_tree.rs:
