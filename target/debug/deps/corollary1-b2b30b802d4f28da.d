/root/repo/target/debug/deps/corollary1-b2b30b802d4f28da.d: crates/harness/src/bin/corollary1.rs Cargo.toml

/root/repo/target/debug/deps/libcorollary1-b2b30b802d4f28da.rmeta: crates/harness/src/bin/corollary1.rs Cargo.toml

crates/harness/src/bin/corollary1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
