/root/repo/target/debug/deps/figure2-48e9aded409c6d7b.d: crates/harness/src/bin/figure2.rs

/root/repo/target/debug/deps/libfigure2-48e9aded409c6d7b.rmeta: crates/harness/src/bin/figure2.rs

crates/harness/src/bin/figure2.rs:
