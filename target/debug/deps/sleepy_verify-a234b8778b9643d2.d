/root/repo/target/debug/deps/sleepy_verify-a234b8778b9643d2.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/debug/deps/libsleepy_verify-a234b8778b9643d2.rmeta: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
