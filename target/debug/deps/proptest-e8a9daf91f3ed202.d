/root/repo/target/debug/deps/proptest-e8a9daf91f3ed202.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-e8a9daf91f3ed202: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
