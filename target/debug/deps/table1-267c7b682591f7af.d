/root/repo/target/debug/deps/table1-267c7b682591f7af.d: crates/harness/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-267c7b682591f7af.rmeta: crates/harness/src/bin/table1.rs

crates/harness/src/bin/table1.rs:
