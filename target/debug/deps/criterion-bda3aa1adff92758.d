/root/repo/target/debug/deps/criterion-bda3aa1adff92758.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bda3aa1adff92758.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
