/root/repo/target/debug/deps/figure1-35a1937afaa96644.d: crates/harness/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-35a1937afaa96644: crates/harness/src/bin/figure1.rs

crates/harness/src/bin/figure1.rs:
