/root/repo/target/debug/deps/bench_lemmas-87ec25d50b694dd1.d: crates/bench/benches/bench_lemmas.rs Cargo.toml

/root/repo/target/debug/deps/libbench_lemmas-87ec25d50b694dd1.rmeta: crates/bench/benches/bench_lemmas.rs Cargo.toml

crates/bench/benches/bench_lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
