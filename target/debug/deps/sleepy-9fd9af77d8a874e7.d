/root/repo/target/debug/deps/sleepy-9fd9af77d8a874e7.d: src/lib.rs

/root/repo/target/debug/deps/libsleepy-9fd9af77d8a874e7.rlib: src/lib.rs

/root/repo/target/debug/deps/libsleepy-9fd9af77d8a874e7.rmeta: src/lib.rs

src/lib.rs:
