/root/repo/target/debug/deps/sleepy_bench-c563cbff74912514.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsleepy_bench-c563cbff74912514.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
