/root/repo/target/debug/deps/sleepy_net-1e1b3d80d5d2c162.d: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/libsleepy_net-1e1b3d80d5d2c162.rmeta: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/error.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/protocol.rs:
crates/net/src/trace.rs:
