/root/repo/target/debug/deps/bench_table1-f9a51a85ee022bb5.d: crates/bench/benches/bench_table1.rs

/root/repo/target/debug/deps/libbench_table1-f9a51a85ee022bb5.rmeta: crates/bench/benches/bench_table1.rs

crates/bench/benches/bench_table1.rs:
