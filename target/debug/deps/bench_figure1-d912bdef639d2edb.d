/root/repo/target/debug/deps/bench_figure1-d912bdef639d2edb.d: crates/bench/benches/bench_figure1.rs

/root/repo/target/debug/deps/libbench_figure1-d912bdef639d2edb.rmeta: crates/bench/benches/bench_figure1.rs

crates/bench/benches/bench_figure1.rs:
