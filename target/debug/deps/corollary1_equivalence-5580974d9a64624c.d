/root/repo/target/debug/deps/corollary1_equivalence-5580974d9a64624c.d: tests/corollary1_equivalence.rs

/root/repo/target/debug/deps/libcorollary1_equivalence-5580974d9a64624c.rmeta: tests/corollary1_equivalence.rs

tests/corollary1_equivalence.rs:
