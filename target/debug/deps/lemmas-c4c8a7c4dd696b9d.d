/root/repo/target/debug/deps/lemmas-c4c8a7c4dd696b9d.d: crates/harness/src/bin/lemmas.rs

/root/repo/target/debug/deps/lemmas-c4c8a7c4dd696b9d: crates/harness/src/bin/lemmas.rs

crates/harness/src/bin/lemmas.rs:
