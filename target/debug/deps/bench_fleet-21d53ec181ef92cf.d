/root/repo/target/debug/deps/bench_fleet-21d53ec181ef92cf.d: crates/bench/benches/bench_fleet.rs

/root/repo/target/debug/deps/libbench_fleet-21d53ec181ef92cf.rmeta: crates/bench/benches/bench_fleet.rs

crates/bench/benches/bench_fleet.rs:
