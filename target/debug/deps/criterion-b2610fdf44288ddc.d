/root/repo/target/debug/deps/criterion-b2610fdf44288ddc.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b2610fdf44288ddc.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b2610fdf44288ddc.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
