/root/repo/target/debug/deps/proptest_graph-a729fd9e128cb3f8.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/proptest_graph-a729fd9e128cb3f8: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
