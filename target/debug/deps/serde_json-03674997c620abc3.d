/root/repo/target/debug/deps/serde_json-03674997c620abc3.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/debug/deps/libserde_json-03674997c620abc3.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
