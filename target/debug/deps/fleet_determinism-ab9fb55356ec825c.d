/root/repo/target/debug/deps/fleet_determinism-ab9fb55356ec825c.d: tests/fleet_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_determinism-ab9fb55356ec825c.rmeta: tests/fleet_determinism.rs Cargo.toml

tests/fleet_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
