/root/repo/target/debug/deps/sleepy_bench-4897f50bc14833ed.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_bench-4897f50bc14833ed.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
