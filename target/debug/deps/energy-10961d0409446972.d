/root/repo/target/debug/deps/energy-10961d0409446972.d: crates/harness/src/bin/energy.rs

/root/repo/target/debug/deps/energy-10961d0409446972: crates/harness/src/bin/energy.rs

crates/harness/src/bin/energy.rs:
