/root/repo/target/debug/deps/sleepy_verify-8ae6ac24f2256fe8.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/debug/deps/libsleepy_verify-8ae6ac24f2256fe8.rmeta: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
