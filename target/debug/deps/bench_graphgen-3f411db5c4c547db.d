/root/repo/target/debug/deps/bench_graphgen-3f411db5c4c547db.d: crates/bench/benches/bench_graphgen.rs

/root/repo/target/debug/deps/libbench_graphgen-3f411db5c4c547db.rmeta: crates/bench/benches/bench_graphgen.rs

crates/bench/benches/bench_graphgen.rs:
