/root/repo/target/debug/deps/sleepy_bench-68b4552ed0ea263f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsleepy_bench-68b4552ed0ea263f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsleepy_bench-68b4552ed0ea263f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
