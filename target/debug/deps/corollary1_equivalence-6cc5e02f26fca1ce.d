/root/repo/target/debug/deps/corollary1_equivalence-6cc5e02f26fca1ce.d: tests/corollary1_equivalence.rs

/root/repo/target/debug/deps/corollary1_equivalence-6cc5e02f26fca1ce: tests/corollary1_equivalence.rs

tests/corollary1_equivalence.rs:
