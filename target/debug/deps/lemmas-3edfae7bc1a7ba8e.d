/root/repo/target/debug/deps/lemmas-3edfae7bc1a7ba8e.d: crates/harness/src/bin/lemmas.rs

/root/repo/target/debug/deps/lemmas-3edfae7bc1a7ba8e: crates/harness/src/bin/lemmas.rs

crates/harness/src/bin/lemmas.rs:
