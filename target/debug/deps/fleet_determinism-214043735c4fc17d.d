/root/repo/target/debug/deps/fleet_determinism-214043735c4fc17d.d: tests/fleet_determinism.rs

/root/repo/target/debug/deps/libfleet_determinism-214043735c4fc17d.rmeta: tests/fleet_determinism.rs

tests/fleet_determinism.rs:
