/root/repo/target/debug/deps/energy-a9ecab85a0f078b9.d: crates/harness/src/bin/energy.rs

/root/repo/target/debug/deps/libenergy-a9ecab85a0f078b9.rmeta: crates/harness/src/bin/energy.rs

crates/harness/src/bin/energy.rs:
