/root/repo/target/debug/deps/lemmas-b1d8ca23285ce76c.d: crates/harness/src/bin/lemmas.rs Cargo.toml

/root/repo/target/debug/deps/liblemmas-b1d8ca23285ce76c.rmeta: crates/harness/src/bin/lemmas.rs Cargo.toml

crates/harness/src/bin/lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
