/root/repo/target/debug/deps/fleet-e88e89b5913647ac.d: crates/fleet/src/bin/fleet.rs

/root/repo/target/debug/deps/libfleet-e88e89b5913647ac.rmeta: crates/fleet/src/bin/fleet.rs

crates/fleet/src/bin/fleet.rs:
