/root/repo/target/debug/deps/sleepy_mis-a60782a7750665ef.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libsleepy_mis-a60782a7750665ef.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/params.rs:
crates/core/src/protocol.rs:
crates/core/src/rank.rs:
crates/core/src/schedule.rs:
crates/core/src/tree.rs:
