/root/repo/target/debug/deps/rand-133824fa6558d0a5.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-133824fa6558d0a5.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
