/root/repo/target/debug/deps/serde-5abb3e20abdfd48c.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libserde-5abb3e20abdfd48c.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs Cargo.toml

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
