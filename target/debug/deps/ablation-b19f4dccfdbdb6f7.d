/root/repo/target/debug/deps/ablation-b19f4dccfdbdb6f7.d: crates/harness/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-b19f4dccfdbdb6f7: crates/harness/src/bin/ablation.rs

crates/harness/src/bin/ablation.rs:
