/root/repo/target/debug/deps/proptest-819782b66ede1be2.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-819782b66ede1be2.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
