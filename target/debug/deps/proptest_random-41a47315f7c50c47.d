/root/repo/target/debug/deps/proptest_random-41a47315f7c50c47.d: tests/proptest_random.rs

/root/repo/target/debug/deps/libproptest_random-41a47315f7c50c47.rmeta: tests/proptest_random.rs

tests/proptest_random.rs:
