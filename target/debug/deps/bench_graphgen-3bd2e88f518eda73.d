/root/repo/target/debug/deps/bench_graphgen-3bd2e88f518eda73.d: crates/bench/benches/bench_graphgen.rs Cargo.toml

/root/repo/target/debug/deps/libbench_graphgen-3bd2e88f518eda73.rmeta: crates/bench/benches/bench_graphgen.rs Cargo.toml

crates/bench/benches/bench_graphgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
