/root/repo/target/debug/deps/theorems-65b3fedddb0f8154.d: crates/harness/src/bin/theorems.rs

/root/repo/target/debug/deps/libtheorems-65b3fedddb0f8154.rmeta: crates/harness/src/bin/theorems.rs

crates/harness/src/bin/theorems.rs:
