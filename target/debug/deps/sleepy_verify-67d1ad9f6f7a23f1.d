/root/repo/target/debug/deps/sleepy_verify-67d1ad9f6f7a23f1.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/debug/deps/libsleepy_verify-67d1ad9f6f7a23f1.rlib: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/debug/deps/libsleepy_verify-67d1ad9f6f7a23f1.rmeta: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
