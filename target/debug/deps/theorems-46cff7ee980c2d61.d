/root/repo/target/debug/deps/theorems-46cff7ee980c2d61.d: crates/harness/src/bin/theorems.rs

/root/repo/target/debug/deps/theorems-46cff7ee980c2d61: crates/harness/src/bin/theorems.rs

crates/harness/src/bin/theorems.rs:
