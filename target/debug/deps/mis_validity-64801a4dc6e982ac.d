/root/repo/target/debug/deps/mis_validity-64801a4dc6e982ac.d: tests/mis_validity.rs

/root/repo/target/debug/deps/mis_validity-64801a4dc6e982ac: tests/mis_validity.rs

tests/mis_validity.rs:
