/root/repo/target/debug/deps/theorems-02451488f25e7eb8.d: crates/harness/src/bin/theorems.rs Cargo.toml

/root/repo/target/debug/deps/libtheorems-02451488f25e7eb8.rmeta: crates/harness/src/bin/theorems.rs Cargo.toml

crates/harness/src/bin/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
