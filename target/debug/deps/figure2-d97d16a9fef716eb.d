/root/repo/target/debug/deps/figure2-d97d16a9fef716eb.d: crates/harness/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-d97d16a9fef716eb: crates/harness/src/bin/figure2.rs

crates/harness/src/bin/figure2.rs:
