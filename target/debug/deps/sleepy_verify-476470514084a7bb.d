/root/repo/target/debug/deps/sleepy_verify-476470514084a7bb.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/debug/deps/libsleepy_verify-476470514084a7bb.rlib: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/debug/deps/libsleepy_verify-476470514084a7bb.rmeta: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
