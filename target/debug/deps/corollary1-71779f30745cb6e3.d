/root/repo/target/debug/deps/corollary1-71779f30745cb6e3.d: crates/harness/src/bin/corollary1.rs

/root/repo/target/debug/deps/corollary1-71779f30745cb6e3: crates/harness/src/bin/corollary1.rs

crates/harness/src/bin/corollary1.rs:
