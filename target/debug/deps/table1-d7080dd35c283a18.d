/root/repo/target/debug/deps/table1-d7080dd35c283a18.d: crates/harness/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-d7080dd35c283a18.rmeta: crates/harness/src/bin/table1.rs Cargo.toml

crates/harness/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
