/root/repo/target/debug/deps/figure2-bf2e92b318d597fd.d: crates/harness/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-bf2e92b318d597fd.rmeta: crates/harness/src/bin/figure2.rs Cargo.toml

crates/harness/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
