/root/repo/target/debug/deps/sleepy_net-bf9d2ac1efbc988a.d: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_net-bf9d2ac1efbc988a.rmeta: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/error.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/protocol.rs:
crates/net/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
