/root/repo/target/debug/deps/sleepy_baselines-27f25ad0a2ac3f9d.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/debug/deps/libsleepy_baselines-27f25ad0a2ac3f9d.rlib: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/debug/deps/libsleepy_baselines-27f25ad0a2ac3f9d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
