/root/repo/target/debug/deps/bench_figure2-79891c9b6c51a599.d: crates/bench/benches/bench_figure2.rs Cargo.toml

/root/repo/target/debug/deps/libbench_figure2-79891c9b6c51a599.rmeta: crates/bench/benches/bench_figure2.rs Cargo.toml

crates/bench/benches/bench_figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
