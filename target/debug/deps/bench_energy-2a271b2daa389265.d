/root/repo/target/debug/deps/bench_energy-2a271b2daa389265.d: crates/bench/benches/bench_energy.rs Cargo.toml

/root/repo/target/debug/deps/libbench_energy-2a271b2daa389265.rmeta: crates/bench/benches/bench_energy.rs Cargo.toml

crates/bench/benches/bench_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
