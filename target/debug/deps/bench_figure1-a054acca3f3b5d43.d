/root/repo/target/debug/deps/bench_figure1-a054acca3f3b5d43.d: crates/bench/benches/bench_figure1.rs Cargo.toml

/root/repo/target/debug/deps/libbench_figure1-a054acca3f3b5d43.rmeta: crates/bench/benches/bench_figure1.rs Cargo.toml

crates/bench/benches/bench_figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
