/root/repo/target/debug/deps/bench_engine-cfe2717e7c88d39b.d: crates/bench/benches/bench_engine.rs

/root/repo/target/debug/deps/libbench_engine-cfe2717e7c88d39b.rmeta: crates/bench/benches/bench_engine.rs

crates/bench/benches/bench_engine.rs:
