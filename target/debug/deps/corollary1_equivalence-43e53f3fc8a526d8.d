/root/repo/target/debug/deps/corollary1_equivalence-43e53f3fc8a526d8.d: tests/corollary1_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcorollary1_equivalence-43e53f3fc8a526d8.rmeta: tests/corollary1_equivalence.rs Cargo.toml

tests/corollary1_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
