/root/repo/target/debug/deps/serde-c4b1d3741431d6d7.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/serde-c4b1d3741431d6d7: vendor/serde/src/lib.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
