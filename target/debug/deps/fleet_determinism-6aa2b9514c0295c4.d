/root/repo/target/debug/deps/fleet_determinism-6aa2b9514c0295c4.d: tests/fleet_determinism.rs

/root/repo/target/debug/deps/fleet_determinism-6aa2b9514c0295c4: tests/fleet_determinism.rs

tests/fleet_determinism.rs:
