/root/repo/target/debug/deps/all_experiments-c5d343cf96a93036.d: crates/harness/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-c5d343cf96a93036: crates/harness/src/bin/all_experiments.rs

crates/harness/src/bin/all_experiments.rs:
