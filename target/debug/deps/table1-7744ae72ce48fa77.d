/root/repo/target/debug/deps/table1-7744ae72ce48fa77.d: crates/harness/src/bin/table1.rs

/root/repo/target/debug/deps/table1-7744ae72ce48fa77: crates/harness/src/bin/table1.rs

crates/harness/src/bin/table1.rs:
