/root/repo/target/debug/deps/lemmas-28fde606131a62e1.d: crates/harness/src/bin/lemmas.rs Cargo.toml

/root/repo/target/debug/deps/liblemmas-28fde606131a62e1.rmeta: crates/harness/src/bin/lemmas.rs Cargo.toml

crates/harness/src/bin/lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
