/root/repo/target/debug/deps/fleet-fa3107942574cdea.d: crates/fleet/src/bin/fleet.rs

/root/repo/target/debug/deps/fleet-fa3107942574cdea: crates/fleet/src/bin/fleet.rs

crates/fleet/src/bin/fleet.rs:
