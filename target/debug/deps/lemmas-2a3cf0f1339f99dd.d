/root/repo/target/debug/deps/lemmas-2a3cf0f1339f99dd.d: crates/harness/src/bin/lemmas.rs

/root/repo/target/debug/deps/liblemmas-2a3cf0f1339f99dd.rmeta: crates/harness/src/bin/lemmas.rs

crates/harness/src/bin/lemmas.rs:
