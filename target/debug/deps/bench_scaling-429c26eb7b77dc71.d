/root/repo/target/debug/deps/bench_scaling-429c26eb7b77dc71.d: crates/bench/benches/bench_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libbench_scaling-429c26eb7b77dc71.rmeta: crates/bench/benches/bench_scaling.rs Cargo.toml

crates/bench/benches/bench_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
