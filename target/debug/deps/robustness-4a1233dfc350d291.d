/root/repo/target/debug/deps/robustness-4a1233dfc350d291.d: crates/harness/src/bin/robustness.rs

/root/repo/target/debug/deps/robustness-4a1233dfc350d291: crates/harness/src/bin/robustness.rs

crates/harness/src/bin/robustness.rs:
