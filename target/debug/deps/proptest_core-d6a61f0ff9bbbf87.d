/root/repo/target/debug/deps/proptest_core-d6a61f0ff9bbbf87.d: crates/core/tests/proptest_core.rs

/root/repo/target/debug/deps/proptest_core-d6a61f0ff9bbbf87: crates/core/tests/proptest_core.rs

crates/core/tests/proptest_core.rs:
