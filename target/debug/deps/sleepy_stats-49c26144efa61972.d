/root/repo/target/debug/deps/sleepy_stats-49c26144efa61972.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libsleepy_stats-49c26144efa61972.rlib: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libsleepy_stats-49c26144efa61972.rmeta: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
