/root/repo/target/debug/deps/coloring-4d0d51e39f7bbf46.d: crates/harness/src/bin/coloring.rs

/root/repo/target/debug/deps/libcoloring-4d0d51e39f7bbf46.rmeta: crates/harness/src/bin/coloring.rs

crates/harness/src/bin/coloring.rs:
