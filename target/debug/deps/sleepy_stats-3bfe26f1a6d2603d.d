/root/repo/target/debug/deps/sleepy_stats-3bfe26f1a6d2603d.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libsleepy_stats-3bfe26f1a6d2603d.rlib: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libsleepy_stats-3bfe26f1a6d2603d.rmeta: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
