/root/repo/target/debug/deps/serde-6d63600e027580b6.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/libserde-6d63600e027580b6.rlib: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/libserde-6d63600e027580b6.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
