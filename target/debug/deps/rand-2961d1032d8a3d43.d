/root/repo/target/debug/deps/rand-2961d1032d8a3d43.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2961d1032d8a3d43.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
