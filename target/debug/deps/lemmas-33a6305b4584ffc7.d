/root/repo/target/debug/deps/lemmas-33a6305b4584ffc7.d: crates/harness/src/bin/lemmas.rs

/root/repo/target/debug/deps/liblemmas-33a6305b4584ffc7.rmeta: crates/harness/src/bin/lemmas.rs

crates/harness/src/bin/lemmas.rs:
