/root/repo/target/debug/deps/sleepy_bench-b7faf1b6bbf0fa58.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sleepy_bench-b7faf1b6bbf0fa58: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
