/root/repo/target/debug/deps/serde_json-499d0457ed5148d3.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/debug/deps/serde_json-499d0457ed5148d3: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
