/root/repo/target/debug/deps/serde-d29d52a39ddf57bd.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/libserde-d29d52a39ddf57bd.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
