/root/repo/target/debug/deps/bench_corollary1-86477aa1879e6cea.d: crates/bench/benches/bench_corollary1.rs

/root/repo/target/debug/deps/libbench_corollary1-86477aa1879e6cea.rmeta: crates/bench/benches/bench_corollary1.rs

crates/bench/benches/bench_corollary1.rs:
