/root/repo/target/debug/deps/all_experiments-70b257a350e4fc10.d: crates/harness/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-70b257a350e4fc10: crates/harness/src/bin/all_experiments.rs

crates/harness/src/bin/all_experiments.rs:
