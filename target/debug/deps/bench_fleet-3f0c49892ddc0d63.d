/root/repo/target/debug/deps/bench_fleet-3f0c49892ddc0d63.d: crates/bench/benches/bench_fleet.rs Cargo.toml

/root/repo/target/debug/deps/libbench_fleet-3f0c49892ddc0d63.rmeta: crates/bench/benches/bench_fleet.rs Cargo.toml

crates/bench/benches/bench_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
