/root/repo/target/debug/deps/engine_vs_executor-7bfdb11ac3ad16db.d: tests/engine_vs_executor.rs

/root/repo/target/debug/deps/libengine_vs_executor-7bfdb11ac3ad16db.rmeta: tests/engine_vs_executor.rs

tests/engine_vs_executor.rs:
