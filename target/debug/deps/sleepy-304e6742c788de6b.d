/root/repo/target/debug/deps/sleepy-304e6742c788de6b.d: src/lib.rs

/root/repo/target/debug/deps/libsleepy-304e6742c788de6b.rmeta: src/lib.rs

src/lib.rs:
