/root/repo/target/debug/deps/robustness-3ab7b1d225ed1bcc.d: crates/harness/src/bin/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-3ab7b1d225ed1bcc.rmeta: crates/harness/src/bin/robustness.rs Cargo.toml

crates/harness/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
