/root/repo/target/debug/deps/table1-92f41c82877dbc48.d: crates/harness/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-92f41c82877dbc48.rmeta: crates/harness/src/bin/table1.rs

crates/harness/src/bin/table1.rs:
