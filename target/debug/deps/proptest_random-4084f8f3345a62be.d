/root/repo/target/debug/deps/proptest_random-4084f8f3345a62be.d: tests/proptest_random.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_random-4084f8f3345a62be.rmeta: tests/proptest_random.rs Cargo.toml

tests/proptest_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
