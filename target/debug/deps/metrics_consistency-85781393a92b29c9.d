/root/repo/target/debug/deps/metrics_consistency-85781393a92b29c9.d: tests/metrics_consistency.rs

/root/repo/target/debug/deps/metrics_consistency-85781393a92b29c9: tests/metrics_consistency.rs

tests/metrics_consistency.rs:
