/root/repo/target/debug/deps/theorems-9af50fafbffe4844.d: crates/harness/src/bin/theorems.rs Cargo.toml

/root/repo/target/debug/deps/libtheorems-9af50fafbffe4844.rmeta: crates/harness/src/bin/theorems.rs Cargo.toml

crates/harness/src/bin/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
