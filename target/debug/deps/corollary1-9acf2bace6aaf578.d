/root/repo/target/debug/deps/corollary1-9acf2bace6aaf578.d: crates/harness/src/bin/corollary1.rs

/root/repo/target/debug/deps/libcorollary1-9acf2bace6aaf578.rmeta: crates/harness/src/bin/corollary1.rs

crates/harness/src/bin/corollary1.rs:
