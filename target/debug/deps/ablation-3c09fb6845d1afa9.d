/root/repo/target/debug/deps/ablation-3c09fb6845d1afa9.d: crates/harness/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-3c09fb6845d1afa9: crates/harness/src/bin/ablation.rs

crates/harness/src/bin/ablation.rs:
