/root/repo/target/debug/deps/all_experiments-53ea63a8e5acad5b.d: crates/harness/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-53ea63a8e5acad5b.rmeta: crates/harness/src/bin/all_experiments.rs Cargo.toml

crates/harness/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
