/root/repo/target/debug/deps/robustness-32c337ab0f6baf1a.d: crates/harness/src/bin/robustness.rs

/root/repo/target/debug/deps/robustness-32c337ab0f6baf1a: crates/harness/src/bin/robustness.rs

crates/harness/src/bin/robustness.rs:
