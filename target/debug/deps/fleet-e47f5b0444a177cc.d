/root/repo/target/debug/deps/fleet-e47f5b0444a177cc.d: crates/fleet/src/bin/fleet.rs

/root/repo/target/debug/deps/libfleet-e47f5b0444a177cc.rmeta: crates/fleet/src/bin/fleet.rs

crates/fleet/src/bin/fleet.rs:
