/root/repo/target/debug/deps/sleepy-a4c1313c114ac96c.d: src/lib.rs

/root/repo/target/debug/deps/libsleepy-a4c1313c114ac96c.rmeta: src/lib.rs

src/lib.rs:
