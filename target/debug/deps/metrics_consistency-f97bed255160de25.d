/root/repo/target/debug/deps/metrics_consistency-f97bed255160de25.d: tests/metrics_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_consistency-f97bed255160de25.rmeta: tests/metrics_consistency.rs Cargo.toml

tests/metrics_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
