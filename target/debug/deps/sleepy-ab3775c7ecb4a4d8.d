/root/repo/target/debug/deps/sleepy-ab3775c7ecb4a4d8.d: src/lib.rs

/root/repo/target/debug/deps/libsleepy-ab3775c7ecb4a4d8.rlib: src/lib.rs

/root/repo/target/debug/deps/libsleepy-ab3775c7ecb4a4d8.rmeta: src/lib.rs

src/lib.rs:
