/root/repo/target/debug/deps/fleet-8867eec7fe6e351a.d: crates/fleet/src/bin/fleet.rs Cargo.toml

/root/repo/target/debug/deps/libfleet-8867eec7fe6e351a.rmeta: crates/fleet/src/bin/fleet.rs Cargo.toml

crates/fleet/src/bin/fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
