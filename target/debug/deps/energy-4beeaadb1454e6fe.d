/root/repo/target/debug/deps/energy-4beeaadb1454e6fe.d: crates/harness/src/bin/energy.rs Cargo.toml

/root/repo/target/debug/deps/libenergy-4beeaadb1454e6fe.rmeta: crates/harness/src/bin/energy.rs Cargo.toml

crates/harness/src/bin/energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
