/root/repo/target/debug/deps/fleet-db87f9d4d74a63d7.d: crates/fleet/src/bin/fleet.rs

/root/repo/target/debug/deps/fleet-db87f9d4d74a63d7: crates/fleet/src/bin/fleet.rs

crates/fleet/src/bin/fleet.rs:
