/root/repo/target/debug/deps/sleepy_verify-1953914971e9feb7.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_verify-1953914971e9feb7.rmeta: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
