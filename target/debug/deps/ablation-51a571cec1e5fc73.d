/root/repo/target/debug/deps/ablation-51a571cec1e5fc73.d: crates/harness/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-51a571cec1e5fc73.rmeta: crates/harness/src/bin/ablation.rs Cargo.toml

crates/harness/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
