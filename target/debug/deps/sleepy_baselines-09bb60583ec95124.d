/root/repo/target/debug/deps/sleepy_baselines-09bb60583ec95124.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_baselines-09bb60583ec95124.rmeta: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
