/root/repo/target/debug/deps/bench_lemmas-80e7cd4ee2c02200.d: crates/bench/benches/bench_lemmas.rs

/root/repo/target/debug/deps/libbench_lemmas-80e7cd4ee2c02200.rmeta: crates/bench/benches/bench_lemmas.rs

crates/bench/benches/bench_lemmas.rs:
