/root/repo/target/debug/deps/table1-9e82267ef8c4c78b.d: crates/harness/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9e82267ef8c4c78b: crates/harness/src/bin/table1.rs

crates/harness/src/bin/table1.rs:
