/root/repo/target/debug/deps/sleepy_baselines-51a14666e15ce8a8.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/debug/deps/libsleepy_baselines-51a14666e15ce8a8.rlib: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/debug/deps/libsleepy_baselines-51a14666e15ce8a8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
