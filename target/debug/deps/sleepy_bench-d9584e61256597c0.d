/root/repo/target/debug/deps/sleepy_bench-d9584e61256597c0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsleepy_bench-d9584e61256597c0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
