/root/repo/target/debug/deps/proptest_random-c5ca1d194751a6dc.d: tests/proptest_random.rs

/root/repo/target/debug/deps/proptest_random-c5ca1d194751a6dc: tests/proptest_random.rs

tests/proptest_random.rs:
