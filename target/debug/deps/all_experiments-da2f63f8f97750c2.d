/root/repo/target/debug/deps/all_experiments-da2f63f8f97750c2.d: crates/harness/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-da2f63f8f97750c2.rmeta: crates/harness/src/bin/all_experiments.rs

crates/harness/src/bin/all_experiments.rs:
