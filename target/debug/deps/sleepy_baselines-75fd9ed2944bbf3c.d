/root/repo/target/debug/deps/sleepy_baselines-75fd9ed2944bbf3c.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/debug/deps/sleepy_baselines-75fd9ed2944bbf3c: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
