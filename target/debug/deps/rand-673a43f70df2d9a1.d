/root/repo/target/debug/deps/rand-673a43f70df2d9a1.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-673a43f70df2d9a1: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
