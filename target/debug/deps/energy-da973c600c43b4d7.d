/root/repo/target/debug/deps/energy-da973c600c43b4d7.d: crates/harness/src/bin/energy.rs

/root/repo/target/debug/deps/energy-da973c600c43b4d7: crates/harness/src/bin/energy.rs

crates/harness/src/bin/energy.rs:
