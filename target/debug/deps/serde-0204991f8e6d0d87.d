/root/repo/target/debug/deps/serde-0204991f8e6d0d87.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/libserde-0204991f8e6d0d87.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
