/root/repo/target/debug/deps/sleepy_mis-af5293b3a04973ce.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libsleepy_mis-af5293b3a04973ce.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/params.rs:
crates/core/src/protocol.rs:
crates/core/src/rank.rs:
crates/core/src/schedule.rs:
crates/core/src/tree.rs:
