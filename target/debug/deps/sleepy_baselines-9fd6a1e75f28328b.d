/root/repo/target/debug/deps/sleepy_baselines-9fd6a1e75f28328b.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/debug/deps/libsleepy_baselines-9fd6a1e75f28328b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
