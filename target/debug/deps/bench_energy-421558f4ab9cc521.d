/root/repo/target/debug/deps/bench_energy-421558f4ab9cc521.d: crates/bench/benches/bench_energy.rs

/root/repo/target/debug/deps/libbench_energy-421558f4ab9cc521.rmeta: crates/bench/benches/bench_energy.rs

crates/bench/benches/bench_energy.rs:
