/root/repo/target/debug/deps/proptest_core-07f0746ad608f9ee.d: crates/core/tests/proptest_core.rs

/root/repo/target/debug/deps/libproptest_core-07f0746ad608f9ee.rmeta: crates/core/tests/proptest_core.rs

crates/core/tests/proptest_core.rs:
