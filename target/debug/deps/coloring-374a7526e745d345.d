/root/repo/target/debug/deps/coloring-374a7526e745d345.d: crates/harness/src/bin/coloring.rs

/root/repo/target/debug/deps/coloring-374a7526e745d345: crates/harness/src/bin/coloring.rs

crates/harness/src/bin/coloring.rs:
