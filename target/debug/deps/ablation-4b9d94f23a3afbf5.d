/root/repo/target/debug/deps/ablation-4b9d94f23a3afbf5.d: crates/harness/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-4b9d94f23a3afbf5.rmeta: crates/harness/src/bin/ablation.rs

crates/harness/src/bin/ablation.rs:
