/root/repo/target/debug/deps/sleepy_fleet-71373fcac8d3e91f.d: crates/fleet/src/lib.rs crates/fleet/src/agg.rs crates/fleet/src/error.rs crates/fleet/src/measure.rs crates/fleet/src/pool.rs crates/fleet/src/run.rs crates/fleet/src/seed.rs crates/fleet/src/sink.rs crates/fleet/src/spec.rs crates/fleet/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_fleet-71373fcac8d3e91f.rmeta: crates/fleet/src/lib.rs crates/fleet/src/agg.rs crates/fleet/src/error.rs crates/fleet/src/measure.rs crates/fleet/src/pool.rs crates/fleet/src/run.rs crates/fleet/src/seed.rs crates/fleet/src/sink.rs crates/fleet/src/spec.rs crates/fleet/src/workload.rs Cargo.toml

crates/fleet/src/lib.rs:
crates/fleet/src/agg.rs:
crates/fleet/src/error.rs:
crates/fleet/src/measure.rs:
crates/fleet/src/pool.rs:
crates/fleet/src/run.rs:
crates/fleet/src/seed.rs:
crates/fleet/src/sink.rs:
crates/fleet/src/spec.rs:
crates/fleet/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
