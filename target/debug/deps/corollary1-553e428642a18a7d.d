/root/repo/target/debug/deps/corollary1-553e428642a18a7d.d: crates/harness/src/bin/corollary1.rs

/root/repo/target/debug/deps/libcorollary1-553e428642a18a7d.rmeta: crates/harness/src/bin/corollary1.rs

crates/harness/src/bin/corollary1.rs:
