/root/repo/target/debug/deps/all_experiments-eee66b50ba4db8a0.d: crates/harness/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-eee66b50ba4db8a0.rmeta: crates/harness/src/bin/all_experiments.rs Cargo.toml

crates/harness/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
