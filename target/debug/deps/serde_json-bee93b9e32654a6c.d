/root/repo/target/debug/deps/serde_json-bee93b9e32654a6c.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/debug/deps/libserde_json-bee93b9e32654a6c.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
