/root/repo/target/debug/deps/mis_validity-734b590fba3f4b5e.d: tests/mis_validity.rs

/root/repo/target/debug/deps/libmis_validity-734b590fba3f4b5e.rmeta: tests/mis_validity.rs

tests/mis_validity.rs:
