/root/repo/target/debug/deps/robustness-f7e55dc2a14c1d4b.d: crates/harness/src/bin/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-f7e55dc2a14c1d4b.rmeta: crates/harness/src/bin/robustness.rs Cargo.toml

crates/harness/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
