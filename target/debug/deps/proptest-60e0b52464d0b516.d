/root/repo/target/debug/deps/proptest-60e0b52464d0b516.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-60e0b52464d0b516.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-60e0b52464d0b516.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
