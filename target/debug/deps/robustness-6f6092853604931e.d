/root/repo/target/debug/deps/robustness-6f6092853604931e.d: crates/harness/src/bin/robustness.rs

/root/repo/target/debug/deps/librobustness-6f6092853604931e.rmeta: crates/harness/src/bin/robustness.rs

crates/harness/src/bin/robustness.rs:
