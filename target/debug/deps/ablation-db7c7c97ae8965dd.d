/root/repo/target/debug/deps/ablation-db7c7c97ae8965dd.d: crates/harness/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-db7c7c97ae8965dd.rmeta: crates/harness/src/bin/ablation.rs

crates/harness/src/bin/ablation.rs:
