/root/repo/target/debug/deps/metrics_consistency-65c2960fe8273ef2.d: tests/metrics_consistency.rs

/root/repo/target/debug/deps/libmetrics_consistency-65c2960fe8273ef2.rmeta: tests/metrics_consistency.rs

tests/metrics_consistency.rs:
