/root/repo/target/debug/deps/sleepy-e981c609dc1c6728.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy-e981c609dc1c6728.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
