/root/repo/target/debug/deps/bench_engine-b1614bc094dc24da.d: crates/bench/benches/bench_engine.rs Cargo.toml

/root/repo/target/debug/deps/libbench_engine-b1614bc094dc24da.rmeta: crates/bench/benches/bench_engine.rs Cargo.toml

crates/bench/benches/bench_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
