/root/repo/target/debug/deps/sleepy-904844e645452f8a.d: src/lib.rs

/root/repo/target/debug/deps/sleepy-904844e645452f8a: src/lib.rs

src/lib.rs:
