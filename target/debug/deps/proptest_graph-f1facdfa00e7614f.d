/root/repo/target/debug/deps/proptest_graph-f1facdfa00e7614f.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/libproptest_graph-f1facdfa00e7614f.rmeta: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
