/root/repo/target/debug/deps/fleet-eb028815b27084e0.d: crates/fleet/src/bin/fleet.rs Cargo.toml

/root/repo/target/debug/deps/libfleet-eb028815b27084e0.rmeta: crates/fleet/src/bin/fleet.rs Cargo.toml

crates/fleet/src/bin/fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
