/root/repo/target/debug/deps/sleepy_stats-93c6d063ce786c35.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/sleepy_stats-93c6d063ce786c35: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
