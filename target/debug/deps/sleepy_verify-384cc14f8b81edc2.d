/root/repo/target/debug/deps/sleepy_verify-384cc14f8b81edc2.d: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

/root/repo/target/debug/deps/sleepy_verify-384cc14f8b81edc2: crates/verify/src/lib.rs crates/verify/src/checker.rs crates/verify/src/coloring.rs crates/verify/src/reference.rs

crates/verify/src/lib.rs:
crates/verify/src/checker.rs:
crates/verify/src/coloring.rs:
crates/verify/src/reference.rs:
