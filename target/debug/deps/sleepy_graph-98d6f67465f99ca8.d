/root/repo/target/debug/deps/sleepy_graph-98d6f67465f99ca8.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/geometric.rs crates/graph/src/generators/gnp.rs crates/graph/src/generators/powerlaw.rs crates/graph/src/generators/regular.rs crates/graph/src/generators/structured.rs crates/graph/src/generators/trees.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/ops.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_graph-98d6f67465f99ca8.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/geometric.rs crates/graph/src/generators/gnp.rs crates/graph/src/generators/powerlaw.rs crates/graph/src/generators/regular.rs crates/graph/src/generators/structured.rs crates/graph/src/generators/trees.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/ops.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/error.rs:
crates/graph/src/generators/mod.rs:
crates/graph/src/generators/geometric.rs:
crates/graph/src/generators/gnp.rs:
crates/graph/src/generators/powerlaw.rs:
crates/graph/src/generators/regular.rs:
crates/graph/src/generators/structured.rs:
crates/graph/src/generators/trees.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
