/root/repo/target/debug/deps/figure2-5755e2a1375450ff.d: crates/harness/src/bin/figure2.rs

/root/repo/target/debug/deps/libfigure2-5755e2a1375450ff.rmeta: crates/harness/src/bin/figure2.rs

crates/harness/src/bin/figure2.rs:
