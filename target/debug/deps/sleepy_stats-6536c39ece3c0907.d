/root/repo/target/debug/deps/sleepy_stats-6536c39ece3c0907.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libsleepy_stats-6536c39ece3c0907.rmeta: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
