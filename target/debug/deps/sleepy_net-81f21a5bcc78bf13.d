/root/repo/target/debug/deps/sleepy_net-81f21a5bcc78bf13.d: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/sleepy_net-81f21a5bcc78bf13: crates/net/src/lib.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/error.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/protocol.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/error.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/protocol.rs:
crates/net/src/trace.rs:
