/root/repo/target/debug/deps/sleepy_bench-3b28b04ddb060a70.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_bench-3b28b04ddb060a70.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
