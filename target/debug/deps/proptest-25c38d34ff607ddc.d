/root/repo/target/debug/deps/proptest-25c38d34ff607ddc.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-25c38d34ff607ddc.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
