/root/repo/target/debug/deps/figure1-ff4c24ceabae9a89.d: crates/harness/src/bin/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-ff4c24ceabae9a89.rmeta: crates/harness/src/bin/figure1.rs Cargo.toml

crates/harness/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
