/root/repo/target/debug/deps/figure1-47b7ab3816c68c09.d: crates/harness/src/bin/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-47b7ab3816c68c09.rmeta: crates/harness/src/bin/figure1.rs Cargo.toml

crates/harness/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
