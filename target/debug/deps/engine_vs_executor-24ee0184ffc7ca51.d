/root/repo/target/debug/deps/engine_vs_executor-24ee0184ffc7ca51.d: tests/engine_vs_executor.rs Cargo.toml

/root/repo/target/debug/deps/libengine_vs_executor-24ee0184ffc7ca51.rmeta: tests/engine_vs_executor.rs Cargo.toml

tests/engine_vs_executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
