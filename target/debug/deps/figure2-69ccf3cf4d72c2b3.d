/root/repo/target/debug/deps/figure2-69ccf3cf4d72c2b3.d: crates/harness/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-69ccf3cf4d72c2b3: crates/harness/src/bin/figure2.rs

crates/harness/src/bin/figure2.rs:
