/root/repo/target/debug/deps/serde-5f5f3a1cbd1d31e2.d: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/libserde-5f5f3a1cbd1d31e2.rlib: vendor/serde/src/lib.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/libserde-5f5f3a1cbd1d31e2.rmeta: vendor/serde/src/lib.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/value.rs:
