/root/repo/target/debug/deps/bench_scaling-d988234cca3534fe.d: crates/bench/benches/bench_scaling.rs

/root/repo/target/debug/deps/libbench_scaling-d988234cca3534fe.rmeta: crates/bench/benches/bench_scaling.rs

crates/bench/benches/bench_scaling.rs:
