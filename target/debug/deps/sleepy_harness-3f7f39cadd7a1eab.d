/root/repo/target/debug/deps/sleepy_harness-3f7f39cadd7a1eab.d: crates/harness/src/lib.rs crates/harness/src/ablation.rs crates/harness/src/coloring.rs crates/harness/src/corollary1.rs crates/harness/src/energy.rs crates/harness/src/error.rs crates/harness/src/figure1.rs crates/harness/src/figure2.rs crates/harness/src/lemmas.rs crates/harness/src/measure.rs crates/harness/src/output.rs crates/harness/src/robustness.rs crates/harness/src/table1.rs crates/harness/src/theorems.rs crates/harness/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_harness-3f7f39cadd7a1eab.rmeta: crates/harness/src/lib.rs crates/harness/src/ablation.rs crates/harness/src/coloring.rs crates/harness/src/corollary1.rs crates/harness/src/energy.rs crates/harness/src/error.rs crates/harness/src/figure1.rs crates/harness/src/figure2.rs crates/harness/src/lemmas.rs crates/harness/src/measure.rs crates/harness/src/output.rs crates/harness/src/robustness.rs crates/harness/src/table1.rs crates/harness/src/theorems.rs crates/harness/src/workloads.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/ablation.rs:
crates/harness/src/coloring.rs:
crates/harness/src/corollary1.rs:
crates/harness/src/energy.rs:
crates/harness/src/error.rs:
crates/harness/src/figure1.rs:
crates/harness/src/figure2.rs:
crates/harness/src/lemmas.rs:
crates/harness/src/measure.rs:
crates/harness/src/output.rs:
crates/harness/src/robustness.rs:
crates/harness/src/table1.rs:
crates/harness/src/theorems.rs:
crates/harness/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
