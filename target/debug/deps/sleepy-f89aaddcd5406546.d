/root/repo/target/debug/deps/sleepy-f89aaddcd5406546.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy-f89aaddcd5406546.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
