/root/repo/target/debug/deps/theorems-0926b9784e5e46b2.d: crates/harness/src/bin/theorems.rs

/root/repo/target/debug/deps/theorems-0926b9784e5e46b2: crates/harness/src/bin/theorems.rs

crates/harness/src/bin/theorems.rs:
