/root/repo/target/debug/deps/bench_figure2-56c5446fb1b67d63.d: crates/bench/benches/bench_figure2.rs

/root/repo/target/debug/deps/libbench_figure2-56c5446fb1b67d63.rmeta: crates/bench/benches/bench_figure2.rs

crates/bench/benches/bench_figure2.rs:
