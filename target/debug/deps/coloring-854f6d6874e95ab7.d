/root/repo/target/debug/deps/coloring-854f6d6874e95ab7.d: crates/harness/src/bin/coloring.rs

/root/repo/target/debug/deps/libcoloring-854f6d6874e95ab7.rmeta: crates/harness/src/bin/coloring.rs

crates/harness/src/bin/coloring.rs:
