/root/repo/target/debug/deps/energy-44d5a0fe6a8b107e.d: crates/harness/src/bin/energy.rs

/root/repo/target/debug/deps/libenergy-44d5a0fe6a8b107e.rmeta: crates/harness/src/bin/energy.rs

crates/harness/src/bin/energy.rs:
