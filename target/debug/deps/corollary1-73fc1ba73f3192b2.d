/root/repo/target/debug/deps/corollary1-73fc1ba73f3192b2.d: crates/harness/src/bin/corollary1.rs

/root/repo/target/debug/deps/corollary1-73fc1ba73f3192b2: crates/harness/src/bin/corollary1.rs

crates/harness/src/bin/corollary1.rs:
