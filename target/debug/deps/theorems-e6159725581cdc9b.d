/root/repo/target/debug/deps/theorems-e6159725581cdc9b.d: crates/harness/src/bin/theorems.rs

/root/repo/target/debug/deps/libtheorems-e6159725581cdc9b.rmeta: crates/harness/src/bin/theorems.rs

crates/harness/src/bin/theorems.rs:
