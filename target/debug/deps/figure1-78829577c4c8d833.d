/root/repo/target/debug/deps/figure1-78829577c4c8d833.d: crates/harness/src/bin/figure1.rs

/root/repo/target/debug/deps/libfigure1-78829577c4c8d833.rmeta: crates/harness/src/bin/figure1.rs

crates/harness/src/bin/figure1.rs:
