/root/repo/target/debug/deps/serde_json-9468fd1e79782edb.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-9468fd1e79782edb.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs Cargo.toml

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
