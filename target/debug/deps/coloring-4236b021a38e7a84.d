/root/repo/target/debug/deps/coloring-4236b021a38e7a84.d: crates/harness/src/bin/coloring.rs Cargo.toml

/root/repo/target/debug/deps/libcoloring-4236b021a38e7a84.rmeta: crates/harness/src/bin/coloring.rs Cargo.toml

crates/harness/src/bin/coloring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
