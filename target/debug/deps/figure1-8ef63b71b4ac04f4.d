/root/repo/target/debug/deps/figure1-8ef63b71b4ac04f4.d: crates/harness/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-8ef63b71b4ac04f4: crates/harness/src/bin/figure1.rs

crates/harness/src/bin/figure1.rs:
