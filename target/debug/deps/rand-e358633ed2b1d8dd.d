/root/repo/target/debug/deps/rand-e358633ed2b1d8dd.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e358633ed2b1d8dd.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e358633ed2b1d8dd.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
