/root/repo/target/debug/deps/rand-28dea502df0d263d.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-28dea502df0d263d.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
