/root/repo/target/debug/deps/serde_derive-2f7ffbedaf009415.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-2f7ffbedaf009415.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
