/root/repo/target/debug/deps/figure2-5b39d101018061c0.d: crates/harness/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-5b39d101018061c0.rmeta: crates/harness/src/bin/figure2.rs Cargo.toml

crates/harness/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
