/root/repo/target/debug/deps/serde_json-41e386894c3ca642.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/debug/deps/libserde_json-41e386894c3ca642.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/debug/deps/libserde_json-41e386894c3ca642.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
