/root/repo/target/debug/deps/bench_table1-45b98be6403c13a3.d: crates/bench/benches/bench_table1.rs Cargo.toml

/root/repo/target/debug/deps/libbench_table1-45b98be6403c13a3.rmeta: crates/bench/benches/bench_table1.rs Cargo.toml

crates/bench/benches/bench_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
