/root/repo/target/debug/deps/coloring-e2f135de1b5100d7.d: crates/harness/src/bin/coloring.rs Cargo.toml

/root/repo/target/debug/deps/libcoloring-e2f135de1b5100d7.rmeta: crates/harness/src/bin/coloring.rs Cargo.toml

crates/harness/src/bin/coloring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
