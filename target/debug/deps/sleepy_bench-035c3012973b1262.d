/root/repo/target/debug/deps/sleepy_bench-035c3012973b1262.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsleepy_bench-035c3012973b1262.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsleepy_bench-035c3012973b1262.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
