/root/repo/target/debug/deps/sleepy_mis-07603d717ab4a2c3.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libsleepy_mis-07603d717ab4a2c3.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

/root/repo/target/debug/deps/libsleepy_mis-07603d717ab4a2c3.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/params.rs crates/core/src/protocol.rs crates/core/src/rank.rs crates/core/src/schedule.rs crates/core/src/tree.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/params.rs:
crates/core/src/protocol.rs:
crates/core/src/rank.rs:
crates/core/src/schedule.rs:
crates/core/src/tree.rs:
