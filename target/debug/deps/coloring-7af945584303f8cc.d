/root/repo/target/debug/deps/coloring-7af945584303f8cc.d: crates/harness/src/bin/coloring.rs

/root/repo/target/debug/deps/coloring-7af945584303f8cc: crates/harness/src/bin/coloring.rs

crates/harness/src/bin/coloring.rs:
