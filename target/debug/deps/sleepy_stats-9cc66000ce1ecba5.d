/root/repo/target/debug/deps/sleepy_stats-9cc66000ce1ecba5.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libsleepy_stats-9cc66000ce1ecba5.rmeta: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
