/root/repo/target/debug/deps/energy-71d3778493d620e9.d: crates/harness/src/bin/energy.rs Cargo.toml

/root/repo/target/debug/deps/libenergy-71d3778493d620e9.rmeta: crates/harness/src/bin/energy.rs Cargo.toml

crates/harness/src/bin/energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
