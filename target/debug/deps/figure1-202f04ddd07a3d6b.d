/root/repo/target/debug/deps/figure1-202f04ddd07a3d6b.d: crates/harness/src/bin/figure1.rs

/root/repo/target/debug/deps/libfigure1-202f04ddd07a3d6b.rmeta: crates/harness/src/bin/figure1.rs

crates/harness/src/bin/figure1.rs:
