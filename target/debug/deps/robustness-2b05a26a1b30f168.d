/root/repo/target/debug/deps/robustness-2b05a26a1b30f168.d: crates/harness/src/bin/robustness.rs

/root/repo/target/debug/deps/librobustness-2b05a26a1b30f168.rmeta: crates/harness/src/bin/robustness.rs

crates/harness/src/bin/robustness.rs:
