/root/repo/target/debug/deps/mis_validity-fe749b83f6ada7e8.d: tests/mis_validity.rs Cargo.toml

/root/repo/target/debug/deps/libmis_validity-fe749b83f6ada7e8.rmeta: tests/mis_validity.rs Cargo.toml

tests/mis_validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
