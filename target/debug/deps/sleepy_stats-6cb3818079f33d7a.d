/root/repo/target/debug/deps/sleepy_stats-6cb3818079f33d7a.d: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libsleepy_stats-6cb3818079f33d7a.rmeta: crates/stats/src/lib.rs crates/stats/src/fit.rs crates/stats/src/streaming.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/fit.rs:
crates/stats/src/streaming.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
