/root/repo/target/debug/deps/all_experiments-a3fb2e65029cb83a.d: crates/harness/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-a3fb2e65029cb83a.rmeta: crates/harness/src/bin/all_experiments.rs

crates/harness/src/bin/all_experiments.rs:
