/root/repo/target/debug/deps/engine_vs_executor-f2822f9da7d79143.d: tests/engine_vs_executor.rs

/root/repo/target/debug/deps/engine_vs_executor-f2822f9da7d79143: tests/engine_vs_executor.rs

tests/engine_vs_executor.rs:
