/root/repo/target/debug/deps/proptest-992a11c1e1f81122.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-992a11c1e1f81122.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
