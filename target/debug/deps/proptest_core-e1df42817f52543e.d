/root/repo/target/debug/deps/proptest_core-e1df42817f52543e.d: crates/core/tests/proptest_core.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_core-e1df42817f52543e.rmeta: crates/core/tests/proptest_core.rs Cargo.toml

crates/core/tests/proptest_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
