/root/repo/target/debug/deps/sleepy_baselines-e7b27b4542f7b7bf.d: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

/root/repo/target/debug/deps/libsleepy_baselines-e7b27b4542f7b7bf.rmeta: crates/baselines/src/lib.rs crates/baselines/src/coloring.rs crates/baselines/src/ghaffari.rs crates/baselines/src/greedy.rs crates/baselines/src/luby.rs crates/baselines/src/runner.rs

crates/baselines/src/lib.rs:
crates/baselines/src/coloring.rs:
crates/baselines/src/ghaffari.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/runner.rs:
