/root/repo/target/debug/deps/serde_derive-fb0d7bdabf924250.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-fb0d7bdabf924250.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
