/root/repo/target/debug/deps/bench_corollary1-c93d0d85d0c272b2.d: crates/bench/benches/bench_corollary1.rs Cargo.toml

/root/repo/target/debug/deps/libbench_corollary1-c93d0d85d0c272b2.rmeta: crates/bench/benches/bench_corollary1.rs Cargo.toml

crates/bench/benches/bench_corollary1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
