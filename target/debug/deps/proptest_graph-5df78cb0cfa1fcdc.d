/root/repo/target/debug/deps/proptest_graph-5df78cb0cfa1fcdc.d: crates/graph/tests/proptest_graph.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_graph-5df78cb0cfa1fcdc.rmeta: crates/graph/tests/proptest_graph.rs Cargo.toml

crates/graph/tests/proptest_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
