/root/repo/target/debug/deps/ablation-e64afc9b32363fab.d: crates/harness/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-e64afc9b32363fab.rmeta: crates/harness/src/bin/ablation.rs Cargo.toml

crates/harness/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
