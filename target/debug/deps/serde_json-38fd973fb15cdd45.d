/root/repo/target/debug/deps/serde_json-38fd973fb15cdd45.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/debug/deps/libserde_json-38fd973fb15cdd45.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

/root/repo/target/debug/deps/libserde_json-38fd973fb15cdd45.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
