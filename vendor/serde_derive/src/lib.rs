//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline): the
//! derive input is scanned for the item name plus its field/variant
//! names, and the generated impl is assembled as a source string. Only
//! the shapes this workspace actually derives are supported: non-generic
//! structs (named, tuple, unit) and enums whose variants are unit,
//! tuple, or struct-like. `#[serde(...)]` attributes are accepted and
//! ignored (the workspace only uses `#[serde(default)]`, which is a
//! deserialization hint and deserialization is a no-op here).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", item.name)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens parse")
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected item name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde stub derive: generic type `{name}` is not supported"));
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            _ => return Err("serde stub derive: malformed struct body".into()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("serde stub derive: malformed enum body".into()),
        },
        other => return Err(format!("serde stub derive: unsupported item kind `{other}`")),
    };
    Ok(Item { name, shape })
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Skips one type (or expression) up to a top-level comma, tracking
/// angle-bracket depth so `Foo<A, B>` does not split.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde stub derive: expected `:` after field name".into()),
        }
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1; // past the comma (or the end)
    }
    Ok(fields)
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_to_top_level_comma(&tokens, &mut i);
        count += 1;
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        skip_to_top_level_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __obj = ::std::vec::Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__obj.push(({f:?}.to_string(), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__obj)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                             ({vname:?}.to_string(), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => \
                             ::serde::Value::Object(vec![({vname:?}.to_string(), \
                             ::serde::Value::Object(vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}
