//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Deterministic case generation without shrinking: every `proptest!`
//! test runs `ProptestConfig::cases` cases, each with an RNG seeded from
//! the case index, so failures are reproducible and the failing case
//! number is printed by the panic location.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// A deterministic RNG for one case.
    pub fn for_case(case: u64) -> Self {
        // Golden-ratio offset keeps neighboring case streams decorrelated.
        TestRng(SmallRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Uniform over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A `Vec` strategy with length uniform in `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.0.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(__case);
                $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )*
                // The case index appears in panic messages via this hook.
                let __guard = $crate::CaseGuard(__case);
                { $body }
                ::std::mem::forget(__guard);
            }
        }
    )*};
}

#[doc(hidden)]
pub struct CaseGuard(pub u64);

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest stand-in: failing case index = {}", self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn deterministic_per_case() {
        let s = (1usize..50).prop_flat_map(|n| {
            crate::collection::vec(0u32..n as u32, 0..10).prop_map(move |v| (n, v))
        });
        let a = s.generate(&mut TestRng::for_case(3));
        let b = s.generate(&mut TestRng::for_case(3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0u64..5, z in 1u32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_collections((n, v) in (1usize..20).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..n as u32, 0..3 * n))
        })) {
            prop_assert!(v.len() < 3 * n);
            prop_assert!(v.iter().all(|&e| (e as usize) < n));
        }

        #[test]
        fn any_covers_wide_domain(x in any::<u64>(), y in any::<u128>()) {
            prop_assert_eq!(x as u128 ^ y ^ y, x as u128);
        }
    }
}
