//! Offline stand-in for `serde_json` (see `vendor/README.md`).

pub use serde::Value;

mod parse;

pub use parse::from_str;

/// Error type for JSON operations.
#[derive(Debug, Clone)]
pub struct Error(pub(crate) String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`].
///
/// # Errors
///
/// Never fails in this stand-in (kept fallible for signature parity).
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serializes to a compact JSON string.
///
/// # Errors
///
/// Never fails in this stand-in.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(serde::value::to_compact_string(&value.to_value()))
}

/// Serializes to a pretty-printed (two-space indented) JSON string.
///
/// # Errors
///
/// Never fails in this stand-in.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(serde::value::to_pretty_string(&value.to_value()))
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Supports `null`, booleans, flat arrays/objects with expression
/// values, and bare expressions — the subset this workspace uses
/// (values that are themselves `json!` calls compose naturally).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).expect("serializable") ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val).expect("serializable")) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("serializable") };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = json!({"a": 1, "b": json!([1.5, true]), "s": "x\"y"});
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.5,true],"s":"x\"y"}"#);
        assert!(to_string_pretty(&v).unwrap().contains("\n  \"a\": 1,"));
    }

    #[test]
    fn float_formatting_keeps_trailing_zero() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&7u64).unwrap(), "7");
    }

    #[test]
    fn round_trip() {
        let v = json!({"a": 1, "b": json!([json!(2), json!(3.5), json!("x")]), "c": json!(null)});
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }
}
