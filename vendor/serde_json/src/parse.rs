//! A small recursive-descent JSON parser.

use crate::{Error, Result, Value};

/// Parses a JSON document.
///
/// # Errors
///
/// Returns an error describing the first syntax problem encountered.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}
