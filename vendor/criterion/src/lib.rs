//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Real wall-clock measurement with a fixed warmup/sample policy, none
//! of criterion's statistics. `cargo bench` prints mean per-iteration
//! times; under `cargo test` (which passes `--test` to bench binaries)
//! each benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: false, sample_budget: Duration::from_millis(400) }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--test` → single-shot mode).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().render(None), self.test_mode, self.sample_budget, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput denominator (display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Adjusts the per-benchmark sampling budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.sample_budget = budget;
        self
    }

    /// Accepted for API parity; this stand-in sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().render(Some(&self.name));
        run_one(&label, self.criterion.test_mode, self.criterion.sample_budget, &mut f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into().render(Some(&self.name));
        run_one(&label, self.criterion.test_mode, self.criterion.sample_budget, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, test_mode: bool, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, test_mode, budget };
    f(&mut b);
    if test_mode {
        println!("{label}: ok (1 iteration)");
    } else if b.iters > 0 {
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!("{label}: {} per iter ({} iters)", fmt_duration(per_iter), b.iters);
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
    budget: Duration,
}

impl Bencher {
    /// Times repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            return;
        }
        // Warmup round, then sample until the time budget is spent.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Identifies a benchmark, optionally parameterized.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// A benchmark id with only a parameter (group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut parts = Vec::new();
        if let Some(g) = group {
            parts.push(g.to_string());
        }
        if !self.function.is_empty() {
            parts.push(self.function.clone());
        }
        if let Some(p) = &self.parameter {
            parts.push(p.clone());
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: None }
    }
}

/// Throughput annotation (display only in this stand-in).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
