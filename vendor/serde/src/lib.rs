//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! `Serialize` converts a value directly into an owned JSON [`Value`]
//! (instead of driving a generic `Serializer`), which is the only
//! serialization path this workspace uses. `Deserialize` is a marker
//! trait: nothing in the workspace parses typed data back out of JSON.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Serialization into an owned JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Marker for types that could be deserialized (derive-only in this
/// workspace; no decoding machinery is provided).
pub trait Deserialize<'de>: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
