//! The owned JSON value type shared by `serde` and `serde_json`.

/// An owned JSON document.
///
/// Objects preserve insertion order (struct-field order for derived
/// types), which keeps serialized reports byte-stable.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative (or arbitrary signed) integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an insertion-ordered list of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64 if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            // Signed/unsigned integers compare numerically (serde_json
            // semantics: 1i64 == 1u64); floats stay a distinct kind.
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::UInt(a), Value::UInt(b)) => a == b,
            (Value::Int(a), Value::UInt(b)) | (Value::UInt(b), Value::Int(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write_compact(self, f)
    }
}

/// Formats a float the way serde_json would: integral finite values keep
/// a trailing `.0`, non-finite values (unrepresentable in JSON) become
/// `null`.
pub(crate) fn fmt_float(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    let mut s = String::new();
    compact_into(v, &mut s);
    f.write_str(&s)
}

pub(crate) fn compact_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => out.push_str(&fmt_float(*x)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact_into(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                compact_into(val, out);
            }
            out.push('}');
        }
    }
}

/// Renders with two-space indentation (serde_json `to_string_pretty` style).
pub(crate) fn pretty_into(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                pretty_into(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                pretty_into(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => compact_into(other, out),
    }
}

/// Compact serialization entry point used by `serde_json`.
pub fn to_compact_string(v: &Value) -> String {
    let mut s = String::new();
    compact_into(v, &mut s);
    s
}

/// Pretty serialization entry point used by `serde_json`.
pub fn to_pretty_string(v: &Value) -> String {
    let mut s = String::new();
    pretty_into(v, 0, &mut s);
    s
}
