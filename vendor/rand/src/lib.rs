//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides the `Rng`/`SeedableRng` surface this workspace uses, plus
//! `rngs::SmallRng` implemented as xoshiro256++ with SplitMix64 state
//! expansion — deterministic across platforms and runs for a fixed seed,
//! which the reproducibility guarantees of the experiment harness and
//! the fleet runtime rely on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling convenience methods (blanket-implemented for every source).
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`u32`/`u64`/`u128`/`usize`: uniform over all values; `f64`:
    /// uniform in `[0, 1)`; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard sampling distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types sampleable uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }

            fn sample_range_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full u128 domain: impossible for the <= 64-bit types here.
                    return lo;
                }
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw from `[0, span)` via rejection sampling.
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        if span.is_power_of_two() {
            return (rng.next_u64() & (span - 1)) as u128;
        }
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = rng.next_u64();
            if x < zone {
                return (x % span) as u128;
            }
        }
    } else {
        let zone = u128::MAX - (u128::MAX % span);
        loop {
            let x = u128::sample_raw(rng);
            if x < zone {
                return x % span;
            }
        }
    }
}

trait SampleRaw {
    fn sample_raw<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleRaw for u128 {
    fn sample_raw<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let x = lo + f64::sample(rng) * (hi - lo);
        // Guard against rounding up to `hi`.
        if x < hi {
            x
        } else {
            lo
        }
    }

    fn sample_range_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used for state expansion.
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256++ requires a non-zero state; SplitMix64 from any
            // seed yields one, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..1);
            assert_eq!(y, 0);
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean far from 1/2");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
